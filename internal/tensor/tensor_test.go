package tensor

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/qmat"
)

func randTensor(r *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return t
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(5+1i, 1, 2, 3)
	if x.At(1, 2, 3) != 5+1i {
		t.Fatal("At/Set mismatch")
	}
	if x.Size() != 24 || x.Rank() != 3 {
		t.Fatal("Size/Rank wrong")
	}
}

func TestPermuteInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 2, 3, 4)
	y := x.Permute(2, 0, 1) // axis order: old 2, old 0, old 1
	z := y.Permute(1, 2, 0) // invert
	for i := range x.Data {
		if x.Data[i] != z.Data[i] {
			t.Fatal("permute not invertible")
		}
	}
	if y.Shape[0] != 4 || y.Shape[1] != 2 || y.Shape[2] != 3 {
		t.Fatalf("permuted shape wrong: %v", y.Shape)
	}
}

func TestContractIsMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 3, 4)
	b := randTensor(rng, 4, 5)
	c := Contract(a, b, []int{1}, []int{0})
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			var want complex128
			for k := 0; k < 4; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if cmplx.Abs(c.At(i, j)-want) > 1e-9 {
				t.Fatalf("contract mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestContractMultiAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 2, 3, 4)
	b := randTensor(rng, 3, 4, 5)
	c := Contract(a, b, []int{1, 2}, []int{0, 1})
	if len(c.Shape) != 2 || c.Shape[0] != 2 || c.Shape[1] != 5 {
		t.Fatalf("bad output shape %v", c.Shape)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 5; j++ {
			var want complex128
			for x := 0; x < 3; x++ {
				for y := 0; y < 4; y++ {
					want += a.At(i, x, y) * b.At(x, y, j)
				}
			}
			if cmplx.Abs(c.At(i, j)-want) > 1e-9 {
				t.Fatal("multi-axis contract mismatch")
			}
		}
	}
}

// TestTraceAsContraction reproduces Fig. 4(b): Tr(U·V†) as a tensor
// contraction over both axes.
func TestTraceAsContraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := qmat.HaarRandom(rng)
	v := qmat.HaarRandom(rng)
	tu, tv := New(2, 2), New(2, 2)
	vd := qmat.Dagger(v)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			tu.Set(u[i][j], i, j)
			tv.Set(vd[i][j], i, j)
		}
	}
	got := Contract(tu, tv, []int{0, 1}, []int{1, 0}).Data[0]
	want := qmat.Trace(qmat.Mul(u, qmat.Dagger(v)))
	if cmplx.Abs(got-want) > 1e-12 {
		t.Fatalf("trace contraction: got %v want %v", got, want)
	}
}

func TestReshapePreservesData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randTensor(rng, 6, 4)
	y := x.Reshape(2, 3, 4)
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatal("reshape changed data")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	x := New(2, 2)
	y := x.Clone()
	y.Set(1, 0, 0)
	if x.At(0, 0) != 0 {
		t.Fatal("clone aliases data")
	}
}
