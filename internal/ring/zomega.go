// Package ring implements exact arithmetic in the rings underlying
// Clifford+T synthesis:
//
//	Z[√2]  = {a + b√2}                       (real quadratic ring)
//	Z[ω]   = {a + bω + cω² + dω³}, ω=e^{iπ/4} (cyclotomic ring of 8th roots)
//	D[ω]   = Z[ω, 1/√2]                       (entries of Clifford+T matrices)
//
// Two parallel implementations are provided: machine int64 coefficients
// (fast path, used by the step-0 enumeration where magnitudes stay small)
// and math/big coefficients (used by gridsynth, the Diophantine solver and
// exact synthesis where denominators grow like 2^k for k ≈ 1.5·log2(1/ε)).
package ring

import (
	"fmt"
	"math"
)

// Sqrt2 is the float64 value of √2, used for numeric embeddings.
const Sqrt2 = math.Sqrt2

// ZOmega is an element a + bω + cω² + dω³ of Z[ω] with ω = e^{iπ/4}
// (so ω² = i and ω⁴ = −1), with int64 coefficients.
type ZOmega struct {
	A, B, C, D int64
}

// ZOmegaFromInt returns the rational integer n as a ring element.
func ZOmegaFromInt(n int64) ZOmega { return ZOmega{A: n} }

// OmegaUnit returns ω^j for any integer j (ω has order 8 up to sign; order 16
// is not needed since ω⁸ = 1).
func OmegaUnit(j int) ZOmega {
	j = ((j % 8) + 8) % 8
	z := ZOmega{A: 1}
	for i := 0; i < j; i++ {
		z = z.MulOmega()
	}
	return z
}

// Add returns z + w.
func (z ZOmega) Add(w ZOmega) ZOmega {
	return ZOmega{z.A + w.A, z.B + w.B, z.C + w.C, z.D + w.D}
}

// Sub returns z − w.
func (z ZOmega) Sub(w ZOmega) ZOmega {
	return ZOmega{z.A - w.A, z.B - w.B, z.C - w.C, z.D - w.D}
}

// Neg returns −z.
func (z ZOmega) Neg() ZOmega { return ZOmega{-z.A, -z.B, -z.C, -z.D} }

// IsZero reports whether z = 0.
func (z ZOmega) IsZero() bool { return z.A == 0 && z.B == 0 && z.C == 0 && z.D == 0 }

// MulOmega returns ω·z. Multiplication by ω shifts coefficients:
// (a, b, c, d) ↦ (−d, a, b, c) because ω⁴ = −1.
func (z ZOmega) MulOmega() ZOmega { return ZOmega{-z.D, z.A, z.B, z.C} }

// Mul returns z·w (polynomial multiplication modulo ω⁴ = −1).
func (z ZOmega) Mul(w ZOmega) ZOmega {
	// (a1 + b1ω + c1ω² + d1ω³)(a2 + b2ω + c2ω² + d2ω³), reduce ω⁴=−1.
	a := z.A*w.A - z.B*w.D - z.C*w.C - z.D*w.B
	b := z.A*w.B + z.B*w.A - z.C*w.D - z.D*w.C
	c := z.A*w.C + z.B*w.B + z.C*w.A - z.D*w.D
	d := z.A*w.D + z.B*w.C + z.C*w.B + z.D*w.A
	return ZOmega{a, b, c, d}
}

// Conj returns the complex conjugate z̄ (the automorphism ω ↦ ω⁻¹ = −ω³):
// (a, b, c, d) ↦ (a, −d, −c, −b).
func (z ZOmega) Conj() ZOmega { return ZOmega{z.A, -z.D, -z.C, -z.B} }

// Bullet returns the √2-conjugate z• (the automorphism ω ↦ −ω, which maps
// √2 ↦ −√2 while fixing i): (a, b, c, d) ↦ (a, −b, c, −d).
func (z ZOmega) Bullet() ZOmega { return ZOmega{z.A, -z.B, z.C, -z.D} }

// Complex returns the numeric embedding of z in C.
func (z ZOmega) Complex() complex128 {
	// ω = (1+i)/√2, ω² = i, ω³ = (−1+i)/√2.
	re := float64(z.A) + (float64(z.B)-float64(z.D))/Sqrt2
	im := float64(z.C) + (float64(z.B)+float64(z.D))/Sqrt2
	return complex(re, im)
}

// Norm2 returns z·z̄ = |z|² as an element of Z[√2] (it is always real).
func (z ZOmega) Norm2() ZSqrt2 {
	// |z|² = (a²+b²+c²+d²) + (ab + bc + cd − da)·√2.
	return ZSqrt2{
		A: z.A*z.A + z.B*z.B + z.C*z.C + z.D*z.D,
		B: z.A*z.B + z.B*z.C + z.C*z.D - z.D*z.A,
	}
}

// DivisibleBySqrt2 reports whether z/√2 ∈ Z[ω], which holds iff
// a ≡ c (mod 2) and b ≡ d (mod 2).
func (z ZOmega) DivisibleBySqrt2() bool {
	return (z.A-z.C)&1 == 0 && (z.B-z.D)&1 == 0
}

// DivSqrt2 returns z/√2; the caller must ensure divisibility.
// Since √2 = ω − ω³, z/√2 = z(ω−ω³)/2 with coefficients
// ((b−d)/2, (a+c)/2, (b+d)/2, (c−a)/2).
func (z ZOmega) DivSqrt2() ZOmega {
	return ZOmega{(z.B - z.D) / 2, (z.A + z.C) / 2, (z.B + z.D) / 2, (z.C - z.A) / 2}
}

// MulSqrt2 returns z·√2.
func (z ZOmega) MulSqrt2() ZOmega {
	// √2 = ω − ω³.
	return ZOmega{z.B - z.D, z.A + z.C, z.B + z.D, z.C - z.A}
}

// String renders z for debugging.
func (z ZOmega) String() string {
	return fmt.Sprintf("(%d%+dω%+dω²%+dω³)", z.A, z.B, z.C, z.D)
}

// ZSqrt2 is an element a + b√2 of Z[√2] with int64 coefficients.
type ZSqrt2 struct {
	A, B int64
}

// Add returns x + y.
func (x ZSqrt2) Add(y ZSqrt2) ZSqrt2 { return ZSqrt2{x.A + y.A, x.B + y.B} }

// Sub returns x − y.
func (x ZSqrt2) Sub(y ZSqrt2) ZSqrt2 { return ZSqrt2{x.A - y.A, x.B - y.B} }

// Neg returns −x.
func (x ZSqrt2) Neg() ZSqrt2 { return ZSqrt2{-x.A, -x.B} }

// Mul returns x·y.
func (x ZSqrt2) Mul(y ZSqrt2) ZSqrt2 {
	return ZSqrt2{x.A*y.A + 2*x.B*y.B, x.A*y.B + x.B*y.A}
}

// Bullet returns the conjugate a − b√2.
func (x ZSqrt2) Bullet() ZSqrt2 { return ZSqrt2{x.A, -x.B} }

// Float returns the numeric embedding a + b√2.
func (x ZSqrt2) Float() float64 { return float64(x.A) + float64(x.B)*Sqrt2 }

// NormZ returns the rational integer norm x·x• = a² − 2b².
func (x ZSqrt2) NormZ() int64 { return x.A*x.A - 2*x.B*x.B }

// IsZero reports whether x = 0.
func (x ZSqrt2) IsZero() bool { return x.A == 0 && x.B == 0 }

// ToZOmega embeds x into Z[ω] (√2 = ω − ω³).
func (x ZSqrt2) ToZOmega() ZOmega { return ZOmega{x.A, x.B, 0, -x.B} }

// Lambda is the fundamental unit λ = 1 + √2 of Z[√2] (λ·λ• = −1).
var Lambda = ZSqrt2{1, 1}

// LambdaInv is λ⁻¹ = √2 − 1.
var LambdaInv = ZSqrt2{-1, 1}

// String renders x for debugging.
func (x ZSqrt2) String() string { return fmt.Sprintf("(%d%+d√2)", x.A, x.B) }
