package ring

import "math/big"

// In-place arithmetic on the big-coefficient ring elements. Every *To
// method writes its result into the receiver, reusing the receiver's
// big.Int storage (no allocation once capacity is established). Methods
// that need temporaries take a *Scratch, which the caller threads through
// a whole computation (one per solver/synthesis, never shared across
// goroutines). All *To methods are alias-safe: the receiver may be one of
// the operands.
//
// The value-semantics API in big.go is a thin wrapper over these methods,
// so there is a single implementation of each operation.

// Scratch holds reusable big.Int temporaries for in-place ring operations.
// The zero value is ready to use.
type Scratch struct {
	t [6]big.Int
}

// Ensure makes the coefficient pointers non-nil so callers can write into
// them directly (solver scratch idiom).
func (x *BSqrt2) Ensure() { x.ensure() }

// ensure makes the coefficient pointers non-nil so in-place methods can
// write into them.
func (x *BSqrt2) ensure() {
	if x.A == nil {
		x.A = new(big.Int)
	}
	if x.B == nil {
		x.B = new(big.Int)
	}
}

// Set copies y into x.
func (x *BSqrt2) Set(y BSqrt2) {
	x.ensure()
	x.A.Set(y.A)
	x.B.Set(y.B)
}

// SetInt64 sets x = a + b√2.
func (x *BSqrt2) SetInt64(a, b int64) {
	x.ensure()
	x.A.SetInt64(a)
	x.B.SetInt64(b)
}

// SetZSqrt2 lifts an int64-coefficient element into x.
func (x *BSqrt2) SetZSqrt2(y ZSqrt2) { x.SetInt64(y.A, y.B) }

// AddTo sets x = y + z.
func (x *BSqrt2) AddTo(y, z BSqrt2) {
	x.ensure()
	x.A.Add(y.A, z.A)
	x.B.Add(y.B, z.B)
}

// SubTo sets x = y − z.
func (x *BSqrt2) SubTo(y, z BSqrt2) {
	x.ensure()
	x.A.Sub(y.A, z.A)
	x.B.Sub(y.B, z.B)
}

// NegTo sets x = −y.
func (x *BSqrt2) NegTo(y BSqrt2) {
	x.ensure()
	x.A.Neg(y.A)
	x.B.Neg(y.B)
}

// BulletTo sets x = y• = a − b√2.
func (x *BSqrt2) BulletTo(y BSqrt2) {
	x.ensure()
	x.A.Set(y.A)
	x.B.Neg(y.B)
}

// MulTo sets x = y·z.
func (x *BSqrt2) MulTo(y, z BSqrt2, s *Scratch) {
	x.ensure()
	a, b, t := &s.t[0], &s.t[1], &s.t[2]
	a.Mul(y.A, z.A)
	t.Mul(y.B, z.B)
	t.Lsh(t, 1)
	a.Add(a, t)
	b.Mul(y.A, z.B)
	t.Mul(y.B, z.A)
	b.Add(b, t)
	x.A.Set(a)
	x.B.Set(b)
}

// NormZTo sets dst = x·x• = a² − 2b².
func (x BSqrt2) NormZTo(dst *big.Int, s *Scratch) {
	t := &s.t[0]
	dst.Mul(x.A, x.A)
	t.Mul(x.B, x.B)
	t.Lsh(t, 1)
	dst.Sub(dst, t)
}

// DivExactTo sets x = y/z when z exactly divides y in Z[√2], leaving x
// untouched and returning false otherwise.
func (x *BSqrt2) DivExactTo(y, z BSqrt2, s *Scratch) bool {
	n, pa, pb, t, r := &s.t[0], &s.t[1], &s.t[2], &s.t[3], &s.t[4]
	// n = N(z) = z.A² − 2·z.B², inlined so n and the temporary stay in
	// distinct scratch slots.
	n.Mul(z.A, z.A)
	t.Mul(z.B, z.B)
	t.Lsh(t, 1)
	n.Sub(n, t)
	if n.Sign() == 0 {
		return false
	}
	// p = y·z• computed coefficient-wise (z• = (z.A, −z.B)).
	pa.Mul(y.A, z.A)
	t.Mul(y.B, z.B)
	t.Lsh(t, 1)
	pa.Sub(pa, t)
	pb.Mul(y.B, z.A)
	t.Mul(y.A, z.B)
	pb.Sub(pb, t)
	qa, qb := &s.t[3], &s.t[5]
	qa.QuoRem(pa, n, r)
	if r.Sign() != 0 {
		return false
	}
	qb.QuoRem(pb, n, r)
	if r.Sign() != 0 {
		return false
	}
	x.ensure()
	x.A.Set(qa)
	x.B.Set(qb)
	return true
}

// Ensure makes the coefficient pointers non-nil so callers can write into
// them directly (solver scratch idiom).
func (z *BOmega) Ensure() { z.ensure() }

// ensure makes the coefficient pointers non-nil so in-place methods can
// write into them.
func (z *BOmega) ensure() {
	if z.A == nil {
		z.A = new(big.Int)
	}
	if z.B == nil {
		z.B = new(big.Int)
	}
	if z.C == nil {
		z.C = new(big.Int)
	}
	if z.D == nil {
		z.D = new(big.Int)
	}
}

// Set copies w into z.
func (z *BOmega) Set(w BOmega) {
	z.ensure()
	z.A.Set(w.A)
	z.B.Set(w.B)
	z.C.Set(w.C)
	z.D.Set(w.D)
}

// SetInt64 sets z = a + bω + cω² + dω³.
func (z *BOmega) SetInt64(a, b, c, d int64) {
	z.ensure()
	z.A.SetInt64(a)
	z.B.SetInt64(b)
	z.C.SetInt64(c)
	z.D.SetInt64(d)
}

// SetZOmega lifts an int64-coefficient element into z.
func (z *BOmega) SetZOmega(w ZOmega) { z.SetInt64(w.A, w.B, w.C, w.D) }

// SetBSqrt2 embeds x = a + b√2 into z (√2 = ω − ω³).
func (z *BOmega) SetBSqrt2(x BSqrt2) {
	z.ensure()
	z.A.Set(x.A)
	z.B.Set(x.B)
	z.C.SetInt64(0)
	z.D.Neg(x.B)
}

// AddTo sets z = v + w.
func (z *BOmega) AddTo(v, w BOmega) {
	z.ensure()
	z.A.Add(v.A, w.A)
	z.B.Add(v.B, w.B)
	z.C.Add(v.C, w.C)
	z.D.Add(v.D, w.D)
}

// SubTo sets z = v − w.
func (z *BOmega) SubTo(v, w BOmega) {
	z.ensure()
	z.A.Sub(v.A, w.A)
	z.B.Sub(v.B, w.B)
	z.C.Sub(v.C, w.C)
	z.D.Sub(v.D, w.D)
}

// NegTo sets z = −w.
func (z *BOmega) NegTo(w BOmega) {
	z.ensure()
	z.A.Neg(w.A)
	z.B.Neg(w.B)
	z.C.Neg(w.C)
	z.D.Neg(w.D)
}

// ConjTo sets z = w̄ (alias-safe: swaps through scratch-free rotation).
func (z *BOmega) ConjTo(w BOmega) {
	z.ensure()
	if z.B == w.B || z.B == w.D { // receiver aliases operand: rotate via values
		b, d := new(big.Int).Neg(w.D), new(big.Int).Neg(w.B)
		z.A.Set(w.A)
		z.C.Neg(w.C)
		z.B, z.D = b, d
		return
	}
	z.A.Set(w.A)
	z.B.Neg(w.D)
	z.C.Neg(w.C)
	z.D.Neg(w.B)
}

// BulletTo sets z = w• = (a, −b, c, −d).
func (z *BOmega) BulletTo(w BOmega) {
	z.ensure()
	z.A.Set(w.A)
	z.B.Neg(w.B)
	z.C.Set(w.C)
	z.D.Neg(w.D)
}

// MulTo sets z = v·w.
func (z *BOmega) MulTo(v, w BOmega, s *Scratch) {
	z.ensure()
	a, b, c, d, t := &s.t[0], &s.t[1], &s.t[2], &s.t[3], &s.t[4]
	a.Mul(v.A, w.A)
	t.Mul(v.B, w.D)
	a.Sub(a, t)
	t.Mul(v.C, w.C)
	a.Sub(a, t)
	t.Mul(v.D, w.B)
	a.Sub(a, t)
	b.Mul(v.A, w.B)
	t.Mul(v.B, w.A)
	b.Add(b, t)
	t.Mul(v.C, w.D)
	b.Sub(b, t)
	t.Mul(v.D, w.C)
	b.Sub(b, t)
	c.Mul(v.A, w.C)
	t.Mul(v.B, w.B)
	c.Add(c, t)
	t.Mul(v.C, w.A)
	c.Add(c, t)
	t.Mul(v.D, w.D)
	c.Sub(c, t)
	d.Mul(v.A, w.D)
	t.Mul(v.B, w.C)
	d.Add(d, t)
	t.Mul(v.C, w.B)
	d.Add(d, t)
	t.Mul(v.D, w.A)
	d.Add(d, t)
	z.A.Set(a)
	z.B.Set(b)
	z.C.Set(c)
	z.D.Set(d)
}

// DivSqrt2To sets z = w/√2 (caller ensures divisibility).
func (z *BOmega) DivSqrt2To(w BOmega, s *Scratch) {
	z.ensure()
	a, b, c, d := &s.t[0], &s.t[1], &s.t[2], &s.t[3]
	a.Sub(w.B, w.D)
	a.Rsh(a, 1)
	b.Add(w.A, w.C)
	b.Rsh(b, 1)
	c.Add(w.B, w.D)
	c.Rsh(c, 1)
	d.Sub(w.C, w.A)
	d.Rsh(d, 1)
	z.A.Set(a)
	z.B.Set(b)
	z.C.Set(c)
	z.D.Set(d)
}

// MulSqrt2To sets z = w·√2.
func (z *BOmega) MulSqrt2To(w BOmega, s *Scratch) {
	z.ensure()
	a, b, c, d := &s.t[0], &s.t[1], &s.t[2], &s.t[3]
	a.Sub(w.B, w.D)
	b.Add(w.A, w.C)
	c.Add(w.B, w.D)
	d.Sub(w.C, w.A)
	z.A.Set(a)
	z.B.Set(b)
	z.C.Set(c)
	z.D.Set(d)
}

// Norm2To sets dst = z·z̄ ∈ Z[√2].
func (z BOmega) Norm2To(dst *BSqrt2, s *Scratch) {
	dst.ensure()
	a, b, t := &s.t[0], &s.t[1], &s.t[2]
	a.Mul(z.A, z.A)
	t.Mul(z.B, z.B)
	a.Add(a, t)
	t.Mul(z.C, z.C)
	a.Add(a, t)
	t.Mul(z.D, z.D)
	a.Add(a, t)
	b.Mul(z.A, z.B)
	t.Mul(z.B, z.C)
	b.Add(b, t)
	t.Mul(z.C, z.D)
	b.Add(b, t)
	t.Mul(z.D, z.A)
	b.Sub(b, t)
	dst.A.Set(a)
	dst.B.Set(b)
}

// NormZTo sets dst = |N(z)| ≥ 0.
func (z BOmega) NormZTo(dst *big.Int, s *Scratch) {
	var n2 BSqrt2
	n2.A, n2.B = &s.t[4], &s.t[5]
	z.Norm2To(&n2, s)
	n2.NormZTo(dst, s)
	dst.Abs(dst)
}
