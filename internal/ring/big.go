package ring

import (
	"fmt"
	"math/big"
)

// BSqrt2 is an element a + b√2 of Z[√2] with arbitrary-precision
// coefficients. All operations allocate fresh big.Ints (value semantics).
type BSqrt2 struct {
	A, B *big.Int
}

// NewBSqrt2 returns a + b√2 from int64 coefficients.
func NewBSqrt2(a, b int64) BSqrt2 {
	return BSqrt2{big.NewInt(a), big.NewInt(b)}
}

// BSqrt2FromZSqrt2 lifts an int64-coefficient element.
func BSqrt2FromZSqrt2(x ZSqrt2) BSqrt2 { return NewBSqrt2(x.A, x.B) }

// Clone returns a deep copy.
func (x BSqrt2) Clone() BSqrt2 {
	return BSqrt2{new(big.Int).Set(x.A), new(big.Int).Set(x.B)}
}

// Add returns x + y.
func (x BSqrt2) Add(y BSqrt2) BSqrt2 {
	return BSqrt2{new(big.Int).Add(x.A, y.A), new(big.Int).Add(x.B, y.B)}
}

// Sub returns x − y.
func (x BSqrt2) Sub(y BSqrt2) BSqrt2 {
	return BSqrt2{new(big.Int).Sub(x.A, y.A), new(big.Int).Sub(x.B, y.B)}
}

// Neg returns −x.
func (x BSqrt2) Neg() BSqrt2 {
	return BSqrt2{new(big.Int).Neg(x.A), new(big.Int).Neg(x.B)}
}

// Mul returns x·y.
func (x BSqrt2) Mul(y BSqrt2) BSqrt2 {
	a := new(big.Int).Mul(x.A, y.A)
	a.Add(a, new(big.Int).Lsh(new(big.Int).Mul(x.B, y.B), 1))
	b := new(big.Int).Mul(x.A, y.B)
	b.Add(b, new(big.Int).Mul(x.B, y.A))
	return BSqrt2{a, b}
}

// Bullet returns the conjugate a − b√2.
func (x BSqrt2) Bullet() BSqrt2 {
	return BSqrt2{new(big.Int).Set(x.A), new(big.Int).Neg(x.B)}
}

// NormZ returns x·x• = a² − 2b² as a big integer.
func (x BSqrt2) NormZ() *big.Int {
	n := new(big.Int).Mul(x.A, x.A)
	t := new(big.Int).Mul(x.B, x.B)
	t.Lsh(t, 1)
	return n.Sub(n, t)
}

// IsZero reports whether x = 0.
func (x BSqrt2) IsZero() bool { return x.A.Sign() == 0 && x.B.Sign() == 0 }

// Equal reports x = y.
func (x BSqrt2) Equal(y BSqrt2) bool { return x.A.Cmp(y.A) == 0 && x.B.Cmp(y.B) == 0 }

// Float returns the numeric embedding with ~200-bit intermediate precision.
func (x BSqrt2) Float() float64 {
	f, _ := x.BigFloat(200).Float64()
	return f
}

// BigFloat returns the embedding a + b√2 at the given precision.
func (x BSqrt2) BigFloat(prec uint) *big.Float {
	s := big.NewFloat(2)
	s.SetPrec(prec)
	s.Sqrt(s)
	bf := new(big.Float).SetPrec(prec).SetInt(x.B)
	bf.Mul(bf, s)
	af := new(big.Float).SetPrec(prec).SetInt(x.A)
	return af.Add(af, bf)
}

// Sign returns the sign of the real embedding a + b√2 (exactly).
func (x BSqrt2) Sign() int {
	sa, sb := x.A.Sign(), x.B.Sign()
	switch {
	case sa == 0 && sb == 0:
		return 0
	case sa >= 0 && sb >= 0:
		return 1
	case sa <= 0 && sb <= 0:
		return -1
	}
	// Mixed signs: compare a² with 2b² (sign decided by the larger magnitude).
	a2 := new(big.Int).Mul(x.A, x.A)
	b2 := new(big.Int).Mul(x.B, x.B)
	b2.Lsh(b2, 1)
	cmp := a2.Cmp(b2)
	if cmp == 0 {
		return 0 // impossible for nonzero integers, but be safe
	}
	if cmp > 0 { // |a| dominates
		return sa
	}
	return sb
}

// DivExact returns x/y if y exactly divides x in Z[√2], with ok=false
// otherwise. x/y = x·y• / N(y).
func (x BSqrt2) DivExact(y BSqrt2) (BSqrt2, bool) {
	n := y.NormZ()
	if n.Sign() == 0 {
		return BSqrt2{}, false
	}
	p := x.Mul(y.Bullet())
	qa, ra := new(big.Int).QuoRem(p.A, n, new(big.Int))
	qb, rb := new(big.Int).QuoRem(p.B, n, new(big.Int))
	if ra.Sign() != 0 || rb.Sign() != 0 {
		return BSqrt2{}, false
	}
	return BSqrt2{qa, qb}, true
}

// PowLambda returns λ^j for any integer j (λ = 1+√2, λ⁻¹ = √2−1).
func PowLambda(j int) BSqrt2 {
	base := NewBSqrt2(1, 1)
	if j < 0 {
		base = NewBSqrt2(-1, 1)
		j = -j
	}
	r := NewBSqrt2(1, 0)
	for i := 0; i < j; i++ {
		r = r.Mul(base)
	}
	return r
}

// String renders x for debugging.
func (x BSqrt2) String() string { return fmt.Sprintf("(%v%+v√2)", x.A, x.B) }

// BOmega is an element a + bω + cω² + dω³ of Z[ω] with arbitrary-precision
// coefficients.
type BOmega struct {
	A, B, C, D *big.Int
}

// NewBOmega returns the element with the given int64 coefficients.
func NewBOmega(a, b, c, d int64) BOmega {
	return BOmega{big.NewInt(a), big.NewInt(b), big.NewInt(c), big.NewInt(d)}
}

// BOmegaFromZOmega lifts an int64-coefficient element.
func BOmegaFromZOmega(z ZOmega) BOmega { return NewBOmega(z.A, z.B, z.C, z.D) }

// BOmegaFromBSqrt2 embeds x = a + b√2 (√2 = ω − ω³).
func BOmegaFromBSqrt2(x BSqrt2) BOmega {
	return BOmega{new(big.Int).Set(x.A), new(big.Int).Set(x.B),
		big.NewInt(0), new(big.Int).Neg(x.B)}
}

// BOmegaFromInt returns the rational integer n.
func BOmegaFromInt(n int64) BOmega { return NewBOmega(n, 0, 0, 0) }

// Clone returns a deep copy.
func (z BOmega) Clone() BOmega {
	return BOmega{new(big.Int).Set(z.A), new(big.Int).Set(z.B),
		new(big.Int).Set(z.C), new(big.Int).Set(z.D)}
}

// ToZOmega converts back to int64 coefficients; ok=false on overflow.
func (z BOmega) ToZOmega() (ZOmega, bool) {
	if !z.A.IsInt64() || !z.B.IsInt64() || !z.C.IsInt64() || !z.D.IsInt64() {
		return ZOmega{}, false
	}
	return ZOmega{z.A.Int64(), z.B.Int64(), z.C.Int64(), z.D.Int64()}, true
}

// IsZero reports whether z = 0.
func (z BOmega) IsZero() bool {
	return z.A.Sign() == 0 && z.B.Sign() == 0 && z.C.Sign() == 0 && z.D.Sign() == 0
}

// Equal reports z = w.
func (z BOmega) Equal(w BOmega) bool {
	return z.A.Cmp(w.A) == 0 && z.B.Cmp(w.B) == 0 && z.C.Cmp(w.C) == 0 && z.D.Cmp(w.D) == 0
}

// Add returns z + w.
func (z BOmega) Add(w BOmega) BOmega {
	return BOmega{new(big.Int).Add(z.A, w.A), new(big.Int).Add(z.B, w.B),
		new(big.Int).Add(z.C, w.C), new(big.Int).Add(z.D, w.D)}
}

// Sub returns z − w.
func (z BOmega) Sub(w BOmega) BOmega {
	return BOmega{new(big.Int).Sub(z.A, w.A), new(big.Int).Sub(z.B, w.B),
		new(big.Int).Sub(z.C, w.C), new(big.Int).Sub(z.D, w.D)}
}

// Neg returns −z.
func (z BOmega) Neg() BOmega {
	return BOmega{new(big.Int).Neg(z.A), new(big.Int).Neg(z.B),
		new(big.Int).Neg(z.C), new(big.Int).Neg(z.D)}
}

// MulOmega returns ω·z: (a,b,c,d) ↦ (−d,a,b,c).
func (z BOmega) MulOmega() BOmega {
	return BOmega{new(big.Int).Neg(z.D), new(big.Int).Set(z.A),
		new(big.Int).Set(z.B), new(big.Int).Set(z.C)}
}

// MulPhase returns ω^j·z.
func (z BOmega) MulPhase(j int) BOmega {
	j = ((j % 8) + 8) % 8
	r := z.Clone()
	for i := 0; i < j; i++ {
		r = r.MulOmega()
	}
	return r
}

// Mul returns z·w.
func (z BOmega) Mul(w BOmega) BOmega {
	mul := func(x, y *big.Int) *big.Int { return new(big.Int).Mul(x, y) }
	a := mul(z.A, w.A)
	a.Sub(a, mul(z.B, w.D))
	a.Sub(a, mul(z.C, w.C))
	a.Sub(a, mul(z.D, w.B))
	b := mul(z.A, w.B)
	b.Add(b, mul(z.B, w.A))
	b.Sub(b, mul(z.C, w.D))
	b.Sub(b, mul(z.D, w.C))
	c := mul(z.A, w.C)
	c.Add(c, mul(z.B, w.B))
	c.Add(c, mul(z.C, w.A))
	c.Sub(c, mul(z.D, w.D))
	d := mul(z.A, w.D)
	d.Add(d, mul(z.B, w.C))
	d.Add(d, mul(z.C, w.B))
	d.Add(d, mul(z.D, w.A))
	return BOmega{a, b, c, d}
}

// Conj returns the complex conjugate: (a,b,c,d) ↦ (a,−d,−c,−b).
func (z BOmega) Conj() BOmega {
	return BOmega{new(big.Int).Set(z.A), new(big.Int).Neg(z.D),
		new(big.Int).Neg(z.C), new(big.Int).Neg(z.B)}
}

// Bullet returns the √2-conjugate: (a,b,c,d) ↦ (a,−b,c,−d).
func (z BOmega) Bullet() BOmega {
	return BOmega{new(big.Int).Set(z.A), new(big.Int).Neg(z.B),
		new(big.Int).Set(z.C), new(big.Int).Neg(z.D)}
}

// Norm2 returns z·z̄ = |z|² as an element of Z[√2].
func (z BOmega) Norm2() BSqrt2 {
	sq := func(x *big.Int) *big.Int { return new(big.Int).Mul(x, x) }
	a := sq(z.A)
	a.Add(a, sq(z.B))
	a.Add(a, sq(z.C))
	a.Add(a, sq(z.D))
	b := new(big.Int).Mul(z.A, z.B)
	b.Add(b, new(big.Int).Mul(z.B, z.C))
	b.Add(b, new(big.Int).Mul(z.C, z.D))
	b.Sub(b, new(big.Int).Mul(z.D, z.A))
	return BSqrt2{a, b}
}

// NormZ returns the absolute rational norm N(z) = N_{Z[√2]/Z}(z·z̄) ≥ 0.
func (z BOmega) NormZ() *big.Int {
	n := z.Norm2().NormZ()
	return n.Abs(n)
}

// DivisibleBySqrt2 reports whether z/√2 ∈ Z[ω].
func (z BOmega) DivisibleBySqrt2() bool {
	ac := new(big.Int).Sub(z.A, z.C)
	bd := new(big.Int).Sub(z.B, z.D)
	return ac.Bit(0) == 0 && bd.Bit(0) == 0
}

// DivSqrt2 returns z/√2 (caller ensures divisibility).
func (z BOmega) DivSqrt2() BOmega {
	half := func(x *big.Int) *big.Int { return new(big.Int).Rsh(x, 1) }
	bd := new(big.Int).Sub(z.B, z.D)
	ac := new(big.Int).Add(z.A, z.C)
	bpd := new(big.Int).Add(z.B, z.D)
	ca := new(big.Int).Sub(z.C, z.A)
	// Rsh on negative big.Ints floors, which is exact when even.
	return BOmega{half(bd), half(ac), half(bpd), half(ca)}
}

// MulSqrt2 returns z·√2.
func (z BOmega) MulSqrt2() BOmega {
	return BOmega{new(big.Int).Sub(z.B, z.D), new(big.Int).Add(z.A, z.C),
		new(big.Int).Add(z.B, z.D), new(big.Int).Sub(z.C, z.A)}
}

// Complex returns the float64 embedding (valid while coefficients fit in
// ~2^52; gridsynth at ε ≥ 1e-9 stays far below this).
func (z BOmega) Complex() complex128 {
	a, _ := new(big.Float).SetInt(z.A).Float64()
	b, _ := new(big.Float).SetInt(z.B).Float64()
	c, _ := new(big.Float).SetInt(z.C).Float64()
	d, _ := new(big.Float).SetInt(z.D).Float64()
	return complex(a+(b-d)/Sqrt2, c+(b+d)/Sqrt2)
}

// String renders z for debugging.
func (z BOmega) String() string {
	return fmt.Sprintf("(%v%+vω%+vω²%+vω³)", z.A, z.B, z.C, z.D)
}

// EuclideanDiv returns q, r with z = q·w + r, choosing q near z/w in Q[ω]
// by coefficient-wise rounding. Coefficient rounding alone does not always
// give N(r) < N(w) in Z[ω], so neighbors of the rounded quotient are also
// tried and the smallest-norm remainder wins.
func EuclideanDiv(z, w BOmega) (q, r BOmega) {
	// z/w = z·w̄·(w·w̄)• / N(w), with N(w) = N(w·w̄) ∈ Z, positive since
	// w·w̄ is totally positive.
	ww := w.Norm2()        // w·w̄ ∈ Z[√2]
	n := ww.NormZ()        // ∈ Z, > 0 for w ≠ 0
	num := z.Mul(w.Conj()) // z·w̄
	num = num.Mul(BOmegaFromBSqrt2(ww.Bullet()))
	nearest := func(x *big.Int) *big.Int {
		// Truncated quotient is within 1 of the nearest integer.
		q0 := new(big.Int).Quo(x, n)
		best := new(big.Int).Set(q0)
		bestErr := new(big.Int).Abs(new(big.Int).Sub(x, new(big.Int).Mul(best, n)))
		for _, delta := range []int64{-1, 1} {
			cand := new(big.Int).Add(q0, big.NewInt(delta))
			err := new(big.Int).Abs(new(big.Int).Sub(x, new(big.Int).Mul(cand, n)))
			if err.Cmp(bestErr) < 0 {
				best, bestErr = cand, err
			}
		}
		return best
	}
	q = BOmega{nearest(num.A), nearest(num.B), nearest(num.C), nearest(num.D)}
	r = z.Sub(q.Mul(w))
	if r.IsZero() || r.NormZ().Cmp(w.NormZ()) < 0 {
		return q, r
	}
	// Rescue: scan the 3^4 neighborhood of q for a norm-decreasing remainder.
	bestQ, bestR := q, r
	bestN := r.NormZ()
	for da := int64(-1); da <= 1; da++ {
		for db := int64(-1); db <= 1; db++ {
			for dc := int64(-1); dc <= 1; dc++ {
				for dd := int64(-1); dd <= 1; dd++ {
					cand := q.Add(NewBOmega(da, db, dc, dd))
					cr := z.Sub(cand.Mul(w))
					if cn := cr.NormZ(); cn.Cmp(bestN) < 0 {
						bestQ, bestR, bestN = cand, cr, cn
					}
				}
			}
		}
	}
	return bestQ, bestR
}

// GCD returns a greatest common divisor of z and w in Z[ω] (unique up to
// units), via the Euclidean algorithm. If division ever fails to shrink the
// norm (possible only through a rounding pathology), the current candidate
// is returned; callers that need certainty verify divisibility afterwards.
func GCD(z, w BOmega) BOmega {
	a, b := z.Clone(), w.Clone()
	for !b.IsZero() {
		_, r := EuclideanDiv(a, b)
		if !r.IsZero() && r.NormZ().Cmp(b.NormZ()) >= 0 {
			return b
		}
		a, b = b, r
	}
	return a
}

// DivExactOmega returns z/w when w exactly divides z in Z[ω].
func DivExactOmega(z, w BOmega) (BOmega, bool) {
	q, r := EuclideanDiv(z, w)
	if !r.IsZero() {
		return BOmega{}, false
	}
	return q, true
}
