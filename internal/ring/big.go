package ring

import (
	"fmt"
	"math/big"
)

// BSqrt2 is an element a + b√2 of Z[√2] with arbitrary-precision
// coefficients. The value-semantics methods below allocate fresh big.Ints
// for their results; hot paths use the in-place *To methods in inplace.go
// (of which these are thin wrappers).
type BSqrt2 struct {
	A, B *big.Int
}

// NewBSqrt2 returns a + b√2 from int64 coefficients.
func NewBSqrt2(a, b int64) BSqrt2 {
	return BSqrt2{big.NewInt(a), big.NewInt(b)}
}

// BSqrt2FromZSqrt2 lifts an int64-coefficient element.
func BSqrt2FromZSqrt2(x ZSqrt2) BSqrt2 { return NewBSqrt2(x.A, x.B) }

// Clone returns a deep copy.
func (x BSqrt2) Clone() BSqrt2 {
	return BSqrt2{new(big.Int).Set(x.A), new(big.Int).Set(x.B)}
}

// Add returns x + y.
func (x BSqrt2) Add(y BSqrt2) BSqrt2 {
	var z BSqrt2
	z.AddTo(x, y)
	return z
}

// Sub returns x − y.
func (x BSqrt2) Sub(y BSqrt2) BSqrt2 {
	var z BSqrt2
	z.SubTo(x, y)
	return z
}

// Neg returns −x.
func (x BSqrt2) Neg() BSqrt2 {
	var z BSqrt2
	z.NegTo(x)
	return z
}

// Mul returns x·y.
func (x BSqrt2) Mul(y BSqrt2) BSqrt2 {
	var z BSqrt2
	var s Scratch
	z.MulTo(x, y, &s)
	return z
}

// Bullet returns the conjugate a − b√2.
func (x BSqrt2) Bullet() BSqrt2 {
	var z BSqrt2
	z.BulletTo(x)
	return z
}

// NormZ returns x·x• = a² − 2b² as a big integer.
func (x BSqrt2) NormZ() *big.Int {
	n := new(big.Int)
	var s Scratch
	x.NormZTo(n, &s)
	return n
}

// IsZero reports whether x = 0.
func (x BSqrt2) IsZero() bool { return x.A.Sign() == 0 && x.B.Sign() == 0 }

// Equal reports x = y.
func (x BSqrt2) Equal(y BSqrt2) bool { return x.A.Cmp(y.A) == 0 && x.B.Cmp(y.B) == 0 }

// sqrt2Prec200 is the hoisted √2 at the 200-bit precision used by Float
// (computed once; read-only thereafter, safe for concurrent use).
var sqrt2Prec200 = func() *big.Float {
	s := big.NewFloat(2)
	s.SetPrec(200)
	s.Sqrt(s)
	return s
}()

// Float returns the numeric embedding with ~200-bit intermediate precision.
func (x BSqrt2) Float() float64 {
	f, _ := x.BigFloat(200).Float64()
	return f
}

// BigFloat returns the embedding a + b√2 at the given precision.
func (x BSqrt2) BigFloat(prec uint) *big.Float {
	s := sqrt2Prec200
	if prec != 200 {
		s = big.NewFloat(2)
		s.SetPrec(prec)
		s.Sqrt(s)
	}
	bf := new(big.Float).SetPrec(prec).SetInt(x.B)
	bf.Mul(bf, s)
	af := new(big.Float).SetPrec(prec).SetInt(x.A)
	return af.Add(af, bf)
}

// Sign returns the sign of the real embedding a + b√2 (exactly).
func (x BSqrt2) Sign() int {
	sa, sb := x.A.Sign(), x.B.Sign()
	switch {
	case sa == 0 && sb == 0:
		return 0
	case sa >= 0 && sb >= 0:
		return 1
	case sa <= 0 && sb <= 0:
		return -1
	}
	// Mixed signs: compare a² with 2b² (sign decided by the larger magnitude).
	a2 := new(big.Int).Mul(x.A, x.A)
	b2 := new(big.Int).Mul(x.B, x.B)
	b2.Lsh(b2, 1)
	cmp := a2.Cmp(b2)
	if cmp == 0 {
		return 0 // impossible for nonzero integers, but be safe
	}
	if cmp > 0 { // |a| dominates
		return sa
	}
	return sb
}

// DivExact returns x/y if y exactly divides x in Z[√2], with ok=false
// otherwise. x/y = x·y• / N(y).
func (x BSqrt2) DivExact(y BSqrt2) (BSqrt2, bool) {
	var z BSqrt2
	var s Scratch
	if !z.DivExactTo(x, y, &s) {
		return BSqrt2{}, false
	}
	return z, true
}

// PowLambda returns λ^j for any integer j (λ = 1+√2, λ⁻¹ = √2−1).
func PowLambda(j int) BSqrt2 {
	base := NewBSqrt2(1, 1)
	if j < 0 {
		base = NewBSqrt2(-1, 1)
		j = -j
	}
	var s Scratch
	r := NewBSqrt2(1, 0)
	for i := 0; i < j; i++ {
		r.MulTo(r, base, &s)
	}
	return r
}

// String renders x for debugging.
func (x BSqrt2) String() string { return fmt.Sprintf("(%v%+v√2)", x.A, x.B) }

// BOmega is an element a + bω + cω² + dω³ of Z[ω] with arbitrary-precision
// coefficients.
type BOmega struct {
	A, B, C, D *big.Int
}

// NewBOmega returns the element with the given int64 coefficients.
func NewBOmega(a, b, c, d int64) BOmega {
	return BOmega{big.NewInt(a), big.NewInt(b), big.NewInt(c), big.NewInt(d)}
}

// BOmegaFromZOmega lifts an int64-coefficient element.
func BOmegaFromZOmega(z ZOmega) BOmega { return NewBOmega(z.A, z.B, z.C, z.D) }

// BOmegaFromBSqrt2 embeds x = a + b√2 (√2 = ω − ω³).
func BOmegaFromBSqrt2(x BSqrt2) BOmega {
	var z BOmega
	z.SetBSqrt2(x)
	return z
}

// BOmegaFromInt returns the rational integer n.
func BOmegaFromInt(n int64) BOmega { return NewBOmega(n, 0, 0, 0) }

// Clone returns a deep copy.
func (z BOmega) Clone() BOmega {
	return BOmega{new(big.Int).Set(z.A), new(big.Int).Set(z.B),
		new(big.Int).Set(z.C), new(big.Int).Set(z.D)}
}

// ToZOmega converts back to int64 coefficients; ok=false on overflow.
func (z BOmega) ToZOmega() (ZOmega, bool) {
	if !z.A.IsInt64() || !z.B.IsInt64() || !z.C.IsInt64() || !z.D.IsInt64() {
		return ZOmega{}, false
	}
	return ZOmega{z.A.Int64(), z.B.Int64(), z.C.Int64(), z.D.Int64()}, true
}

// IsZero reports whether z = 0.
func (z BOmega) IsZero() bool {
	return z.A.Sign() == 0 && z.B.Sign() == 0 && z.C.Sign() == 0 && z.D.Sign() == 0
}

// Equal reports z = w.
func (z BOmega) Equal(w BOmega) bool {
	return z.A.Cmp(w.A) == 0 && z.B.Cmp(w.B) == 0 && z.C.Cmp(w.C) == 0 && z.D.Cmp(w.D) == 0
}

// Add returns z + w.
func (z BOmega) Add(w BOmega) BOmega {
	var r BOmega
	r.AddTo(z, w)
	return r
}

// Sub returns z − w.
func (z BOmega) Sub(w BOmega) BOmega {
	var r BOmega
	r.SubTo(z, w)
	return r
}

// Neg returns −z.
func (z BOmega) Neg() BOmega {
	var r BOmega
	r.NegTo(z)
	return r
}

// MulOmega returns ω·z: (a,b,c,d) ↦ (−d,a,b,c).
func (z BOmega) MulOmega() BOmega {
	return BOmega{new(big.Int).Neg(z.D), new(big.Int).Set(z.A),
		new(big.Int).Set(z.B), new(big.Int).Set(z.C)}
}

// MulPhase returns ω^j·z.
func (z BOmega) MulPhase(j int) BOmega {
	j = ((j % 8) + 8) % 8
	r := z.Clone()
	for i := 0; i < j; i++ {
		r = r.MulOmega()
	}
	return r
}

// Mul returns z·w.
func (z BOmega) Mul(w BOmega) BOmega {
	var r BOmega
	var s Scratch
	r.MulTo(z, w, &s)
	return r
}

// Conj returns the complex conjugate: (a,b,c,d) ↦ (a,−d,−c,−b).
func (z BOmega) Conj() BOmega {
	var r BOmega
	r.ConjTo(z)
	return r
}

// Bullet returns the √2-conjugate: (a,b,c,d) ↦ (a,−b,c,−d).
func (z BOmega) Bullet() BOmega {
	var r BOmega
	r.BulletTo(z)
	return r
}

// Norm2 returns z·z̄ = |z|² as an element of Z[√2].
func (z BOmega) Norm2() BSqrt2 {
	var n BSqrt2
	var s Scratch
	z.Norm2To(&n, &s)
	return n
}

// NormZ returns the absolute rational norm N(z) = N_{Z[√2]/Z}(z·z̄) ≥ 0.
func (z BOmega) NormZ() *big.Int {
	n := new(big.Int)
	var s Scratch
	z.NormZTo(n, &s)
	return n
}

// DivisibleBySqrt2 reports whether z/√2 ∈ Z[ω].
func (z BOmega) DivisibleBySqrt2() bool {
	// a − c and b − d must both be even; parity of a difference is the
	// XOR of the operand parities, so no subtraction is needed.
	return z.A.Bit(0) == z.C.Bit(0) && z.B.Bit(0) == z.D.Bit(0)
}

// DivSqrt2 returns z/√2 (caller ensures divisibility).
func (z BOmega) DivSqrt2() BOmega {
	var r BOmega
	var s Scratch
	r.DivSqrt2To(z, &s)
	return r
}

// MulSqrt2 returns z·√2.
func (z BOmega) MulSqrt2() BOmega {
	var r BOmega
	var s Scratch
	r.MulSqrt2To(z, &s)
	return r
}

// Complex returns the float64 embedding (valid while coefficients fit in
// ~2^52; gridsynth at ε ≥ 1e-9 stays far below this).
func (z BOmega) Complex() complex128 {
	a, _ := new(big.Float).SetInt(z.A).Float64()
	b, _ := new(big.Float).SetInt(z.B).Float64()
	c, _ := new(big.Float).SetInt(z.C).Float64()
	d, _ := new(big.Float).SetInt(z.D).Float64()
	return complex(a+(b-d)/Sqrt2, c+(b+d)/Sqrt2)
}

// String renders z for debugging.
func (z BOmega) String() string {
	return fmt.Sprintf("(%v%+vω%+vω²%+vω³)", z.A, z.B, z.C, z.D)
}

// EuclidState carries the reusable temporaries of Euclidean division and
// gcd in Z[ω]. One state serves a whole search; the zero value is ready.
// Not safe for concurrent use.
type EuclidState struct {
	s          Scratch
	a, b, q, r BOmega // owned rotation slots for the gcd loop
	t, num     BOmega
	ww, wb     BSqrt2
	n, e1, e2  big.Int
	nb, nr     big.Int
}

// nearestTo sets dst to the integer nearest x/n (|n| > 0), using the
// state's temporaries.
func (st *EuclidState) nearestTo(dst, x *big.Int) {
	RoundQuoTo(dst, x, &st.n, &st.e1, &st.e2)
}

// RoundQuoTo sets dst to the integer nearest x/n (n ≠ 0), drawing its two
// temporaries from the caller (the scratch-threading idiom). It is the
// single implementation of nearest-integer division shared by the Z[ω]
// Euclid state here and the Z[√2] Euclid loop in the Diophantine solver.
func RoundQuoTo(dst, x, n, t1, t2 *big.Int) {
	dst.Quo(x, n)
	// Truncated quotient is within 1 of the nearest integer.
	t1.Mul(dst, n)
	t1.Sub(x, t1)
	t1.Abs(t1) // |x − q0·n|
	bestDelta := int64(0)
	for _, delta := range [2]int64{-1, 1} {
		t2.SetInt64(delta)
		t2.Add(dst, t2)
		t2.Mul(t2, n)
		t2.Sub(x, t2)
		t2.Abs(t2)
		if t2.Cmp(t1) < 0 {
			t1.Set(t2)
			bestDelta = delta
		}
	}
	if bestDelta != 0 {
		t2.SetInt64(bestDelta)
		dst.Add(dst, t2)
	}
}

// euclidTo computes q, r with z = q·w + r into the state's q/r slots
// (mirroring EuclideanDiv, including the rare rescue scan).
func (st *EuclidState) euclidTo(z, w BOmega) {
	s := &st.s
	w.Norm2To(&st.ww, s) // w·w̄ ∈ Z[√2]
	st.ww.NormZTo(&st.n, s)
	st.t.ConjTo(w)
	st.num.MulTo(z, st.t, s) // z·w̄
	st.wb.BulletTo(st.ww)
	st.t.SetBSqrt2(st.wb)
	st.num.MulTo(st.num, st.t, s)
	st.q.ensure()
	st.nearestTo(st.q.A, st.num.A)
	st.nearestTo(st.q.B, st.num.B)
	st.nearestTo(st.q.C, st.num.C)
	st.nearestTo(st.q.D, st.num.D)
	st.t.MulTo(st.q, w, s)
	st.r.SubTo(z, st.t)
	if st.r.IsZero() {
		return
	}
	st.r.NormZTo(&st.nr, s)
	w.NormZTo(&st.nb, s)
	if st.nr.Cmp(&st.nb) < 0 {
		return
	}
	// Rescue: scan the 3^4 neighborhood of q for a norm-decreasing
	// remainder (rare; value-semantics ops are fine here).
	bestQ, bestR := st.q.Clone(), st.r.Clone()
	bestN := new(big.Int).Set(&st.nr)
	for da := int64(-1); da <= 1; da++ {
		for db := int64(-1); db <= 1; db++ {
			for dc := int64(-1); dc <= 1; dc++ {
				for dd := int64(-1); dd <= 1; dd++ {
					cand := st.q.Add(NewBOmega(da, db, dc, dd))
					cr := z.Sub(cand.Mul(w))
					if cn := cr.NormZ(); cn.Cmp(bestN) < 0 {
						bestQ, bestR, bestN = cand, cr, cn
					}
				}
			}
		}
	}
	st.q.Set(bestQ)
	st.r.Set(bestR)
}

// GCD computes a greatest common divisor of z and w (as ring.GCD) reusing
// the state's storage. The result is freshly allocated and owned by the
// caller.
func (st *EuclidState) GCD(z, w BOmega) BOmega {
	st.a.Set(z)
	st.b.Set(w)
	s := &st.s
	for !st.b.IsZero() {
		st.euclidTo(st.a, st.b)
		if !st.r.IsZero() {
			st.r.NormZTo(&st.nr, s)
			st.b.NormZTo(&st.nb, s)
			if st.nr.Cmp(&st.nb) >= 0 {
				return st.b.Clone()
			}
		}
		st.a, st.b, st.r = st.b, st.r, st.a
	}
	return st.a.Clone()
}

// EuclideanDiv returns q, r with z = q·w + r, choosing q near z/w in Q[ω]
// by coefficient-wise rounding. Coefficient rounding alone does not always
// give N(r) < N(w) in Z[ω], so neighbors of the rounded quotient are also
// tried and the smallest-norm remainder wins.
func EuclideanDiv(z, w BOmega) (q, r BOmega) {
	var st EuclidState
	st.euclidTo(z, w)
	return st.q.Clone(), st.r.Clone()
}

// GCD returns a greatest common divisor of z and w in Z[ω] (unique up to
// units), via the Euclidean algorithm. If division ever fails to shrink the
// norm (possible only through a rounding pathology), the current candidate
// is returned; callers that need certainty verify divisibility afterwards.
func GCD(z, w BOmega) BOmega {
	var st EuclidState
	return st.GCD(z, w)
}

// DivExactOmega returns z/w when w exactly divides z in Z[ω].
func DivExactOmega(z, w BOmega) (BOmega, bool) {
	q, r := EuclideanDiv(z, w)
	if !r.IsZero() {
		return BOmega{}, false
	}
	return q, true
}
