package ring

import "math/bits"

// Overflow-checked int64 arithmetic on ZOmega and ZSqrt2 — the
// small-coefficient fast path of the engine. Every operation returns
// ok=false instead of silently wrapping, so callers (exact synthesis, the
// Diophantine solver) can run entirely in machine integers and promote to
// the math/big representation only when a coefficient actually outgrows
// int64. The differential fuzz tests in checked_test.go pin these results
// to the pure-big.Int reference, including at the overflow boundary.

// addInt64 returns a+b with an overflow flag.
func addInt64(a, b int64) (int64, bool) {
	r := a + b
	// Overflow iff operands share a sign and the result sign differs.
	if (a >= 0) == (b >= 0) && (r >= 0) != (a >= 0) {
		return 0, false
	}
	return r, true
}

// subInt64 returns a−b with an overflow flag.
func subInt64(a, b int64) (int64, bool) {
	if b == -1<<63 {
		// −b overflows; a − MinInt64 = a + 2^63 overflows unless a < 0.
		if a >= 0 {
			return 0, false
		}
		return a + (1<<63 - 1) + 1, true
	}
	return addInt64(a, -b)
}

// mulInt64 returns a·b with an overflow flag.
func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// Adjust the unsigned 128-bit product for negative operands.
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	r := int64(lo)
	// Valid iff the high word is the sign extension of the low word.
	if hi != uint64(r>>63) {
		return 0, false
	}
	return r, true
}

// negInt64 returns −a with an overflow flag (MinInt64 has no negation).
func negInt64(a int64) (int64, bool) {
	if a == -1<<63 {
		return 0, false
	}
	return -a, true
}

// AddChecked returns z + w with ok=false on coefficient overflow.
func (z ZOmega) AddChecked(w ZOmega) (ZOmega, bool) {
	a, ok1 := addInt64(z.A, w.A)
	b, ok2 := addInt64(z.B, w.B)
	c, ok3 := addInt64(z.C, w.C)
	d, ok4 := addInt64(z.D, w.D)
	return ZOmega{a, b, c, d}, ok1 && ok2 && ok3 && ok4
}

// SubChecked returns z − w with ok=false on coefficient overflow.
func (z ZOmega) SubChecked(w ZOmega) (ZOmega, bool) {
	a, ok1 := subInt64(z.A, w.A)
	b, ok2 := subInt64(z.B, w.B)
	c, ok3 := subInt64(z.C, w.C)
	d, ok4 := subInt64(z.D, w.D)
	return ZOmega{a, b, c, d}, ok1 && ok2 && ok3 && ok4
}

// NegChecked returns −z with ok=false on coefficient overflow.
func (z ZOmega) NegChecked() (ZOmega, bool) {
	a, ok1 := negInt64(z.A)
	b, ok2 := negInt64(z.B)
	c, ok3 := negInt64(z.C)
	d, ok4 := negInt64(z.D)
	return ZOmega{a, b, c, d}, ok1 && ok2 && ok3 && ok4
}

// BulletChecked returns z• with ok=false on coefficient overflow
// (only MinInt64 coefficients can overflow under negation).
func (z ZOmega) BulletChecked() (ZOmega, bool) {
	b, ok1 := negInt64(z.B)
	d, ok2 := negInt64(z.D)
	return ZOmega{z.A, b, z.C, d}, ok1 && ok2
}

// ConjChecked returns z̄ with ok=false on coefficient overflow.
func (z ZOmega) ConjChecked() (ZOmega, bool) {
	b, ok1 := negInt64(z.D)
	c, ok2 := negInt64(z.C)
	d, ok3 := negInt64(z.B)
	return ZOmega{z.A, b, c, d}, ok1 && ok2 && ok3
}

// dot4 returns s1·x1·y1 + s2·x2·y2 + s3·x3·y3 + s4·x4·y4 for signs si ∈
// {+1,−1}, with overflow checking on every step.
func dot4(x1, y1, x2, y2, x3, y3, x4, y4 int64, s2, s3, s4 bool) (int64, bool) {
	t1, ok := mulInt64(x1, y1)
	if !ok {
		return 0, false
	}
	t2, ok := mulInt64(x2, y2)
	if !ok {
		return 0, false
	}
	if !s2 {
		if t2, ok = negInt64(t2); !ok {
			return 0, false
		}
	}
	acc, ok := addInt64(t1, t2)
	if !ok {
		return 0, false
	}
	t3, ok := mulInt64(x3, y3)
	if !ok {
		return 0, false
	}
	if !s3 {
		if t3, ok = negInt64(t3); !ok {
			return 0, false
		}
	}
	if acc, ok = addInt64(acc, t3); !ok {
		return 0, false
	}
	t4, ok := mulInt64(x4, y4)
	if !ok {
		return 0, false
	}
	if !s4 {
		if t4, ok = negInt64(t4); !ok {
			return 0, false
		}
	}
	return addInt64(acc, t4)
}

// MulChecked returns z·w with ok=false on coefficient overflow.
func (z ZOmega) MulChecked(w ZOmega) (ZOmega, bool) {
	a, ok1 := dot4(z.A, w.A, z.B, w.D, z.C, w.C, z.D, w.B, false, false, false)
	b, ok2 := dot4(z.A, w.B, z.B, w.A, z.C, w.D, z.D, w.C, true, false, false)
	c, ok3 := dot4(z.A, w.C, z.B, w.B, z.C, w.A, z.D, w.D, true, true, false)
	d, ok4 := dot4(z.A, w.D, z.B, w.C, z.C, w.B, z.D, w.A, true, true, true)
	return ZOmega{a, b, c, d}, ok1 && ok2 && ok3 && ok4
}

// Norm2Checked returns z·z̄ ∈ Z[√2] with ok=false on coefficient overflow.
func (z ZOmega) Norm2Checked() (ZSqrt2, bool) {
	a, ok1 := dot4(z.A, z.A, z.B, z.B, z.C, z.C, z.D, z.D, true, true, true)
	b, ok2 := dot4(z.A, z.B, z.B, z.C, z.C, z.D, z.D, z.A, true, true, false)
	return ZSqrt2{a, b}, ok1 && ok2
}

// DivSqrt2Checked returns z/√2 with ok=false on intermediate overflow; the
// caller must ensure divisibility (as with DivSqrt2).
func (z ZOmega) DivSqrt2Checked() (ZOmega, bool) {
	bd, ok1 := subInt64(z.B, z.D)
	ac, ok2 := addInt64(z.A, z.C)
	bpd, ok3 := addInt64(z.B, z.D)
	ca, ok4 := subInt64(z.C, z.A)
	return ZOmega{bd / 2, ac / 2, bpd / 2, ca / 2}, ok1 && ok2 && ok3 && ok4
}

// MulSqrt2Checked returns z·√2 with ok=false on coefficient overflow.
func (z ZOmega) MulSqrt2Checked() (ZOmega, bool) {
	bd, ok1 := subInt64(z.B, z.D)
	ac, ok2 := addInt64(z.A, z.C)
	bpd, ok3 := addInt64(z.B, z.D)
	ca, ok4 := subInt64(z.C, z.A)
	return ZOmega{bd, ac, bpd, ca}, ok1 && ok2 && ok3 && ok4
}

// AddChecked returns x + y with ok=false on coefficient overflow.
func (x ZSqrt2) AddChecked(y ZSqrt2) (ZSqrt2, bool) {
	a, ok1 := addInt64(x.A, y.A)
	b, ok2 := addInt64(x.B, y.B)
	return ZSqrt2{a, b}, ok1 && ok2
}

// SubChecked returns x − y with ok=false on coefficient overflow.
func (x ZSqrt2) SubChecked(y ZSqrt2) (ZSqrt2, bool) {
	a, ok1 := subInt64(x.A, y.A)
	b, ok2 := subInt64(x.B, y.B)
	return ZSqrt2{a, b}, ok1 && ok2
}

// MulChecked returns x·y with ok=false on coefficient overflow.
func (x ZSqrt2) MulChecked(y ZSqrt2) (ZSqrt2, bool) {
	aa, ok := mulInt64(x.A, y.A)
	if !ok {
		return ZSqrt2{}, false
	}
	bb, ok := mulInt64(x.B, y.B)
	if !ok {
		return ZSqrt2{}, false
	}
	bb2, ok := mulInt64(bb, 2)
	if !ok {
		return ZSqrt2{}, false
	}
	a, ok1 := addInt64(aa, bb2)
	ab, ok2 := mulInt64(x.A, y.B)
	ba, ok3 := mulInt64(x.B, y.A)
	if !(ok1 && ok2 && ok3) {
		return ZSqrt2{}, false
	}
	b, ok4 := addInt64(ab, ba)
	return ZSqrt2{a, b}, ok4
}

// BulletChecked returns x• with ok=false on coefficient overflow.
func (x ZSqrt2) BulletChecked() (ZSqrt2, bool) {
	b, ok := negInt64(x.B)
	return ZSqrt2{x.A, b}, ok
}

// NormZChecked returns a² − 2b² with ok=false on overflow.
func (x ZSqrt2) NormZChecked() (int64, bool) {
	a2, ok := mulInt64(x.A, x.A)
	if !ok {
		return 0, false
	}
	b2, ok := mulInt64(x.B, x.B)
	if !ok {
		return 0, false
	}
	b22, ok := mulInt64(b2, 2)
	if !ok {
		return 0, false
	}
	return subInt64(a2, b22)
}

// reduceChecked divides out common √2 factors so K is minimal, with
// overflow checking (the quotients only shrink, but the DivSqrt2
// intermediates are sums/differences of coefficients).
func (m *UMat) reduceChecked() bool {
	for m.K > 0 &&
		m.E[0][0].DivisibleBySqrt2() && m.E[0][1].DivisibleBySqrt2() &&
		m.E[1][0].DivisibleBySqrt2() && m.E[1][1].DivisibleBySqrt2() {
		var n UMat
		n.K = m.K - 1
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				e, ok := m.E[i][j].DivSqrt2Checked()
				if !ok {
					return false
				}
				n.E[i][j] = e
			}
		}
		*m = n
	}
	return true
}

// MulChecked returns m·n reduced, with ok=false on coefficient overflow.
func (m UMat) MulChecked(n UMat) (UMat, bool) {
	var r UMat
	r.K = m.K + n.K
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			p0, ok := m.E[i][0].MulChecked(n.E[0][j])
			if !ok {
				return UMat{}, false
			}
			p1, ok := m.E[i][1].MulChecked(n.E[1][j])
			if !ok {
				return UMat{}, false
			}
			e, ok := p0.AddChecked(p1)
			if !ok {
				return UMat{}, false
			}
			r.E[i][j] = e
		}
	}
	if !r.reduceChecked() {
		return UMat{}, false
	}
	return r, true
}

// DaggerChecked returns m† with ok=false on coefficient overflow.
func (m UMat) DaggerChecked() (UMat, bool) {
	var r UMat
	r.K = m.K
	e00, ok1 := m.E[0][0].ConjChecked()
	e01, ok2 := m.E[1][0].ConjChecked()
	e10, ok3 := m.E[0][1].ConjChecked()
	e11, ok4 := m.E[1][1].ConjChecked()
	r.E[0][0], r.E[0][1], r.E[1][0], r.E[1][1] = e00, e01, e10, e11
	return r, ok1 && ok2 && ok3 && ok4
}
