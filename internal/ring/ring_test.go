package ring

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/qmat"
)

func randZOmega(r *rand.Rand, bound int64) ZOmega {
	f := func() int64 { return r.Int63n(2*bound+1) - bound }
	return ZOmega{f(), f(), f(), f()}
}

func TestZOmegaEmbeddingHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z, w := randZOmega(r, 50), randZOmega(r, 50)
		sum := z.Add(w).Complex()
		if cmplx.Abs(sum-(z.Complex()+w.Complex())) > 1e-9 {
			return false
		}
		prod := z.Mul(w).Complex()
		if cmplx.Abs(prod-z.Complex()*w.Complex()) > 1e-6 {
			return false
		}
		if cmplx.Abs(z.Conj().Complex()-cmplx.Conj(z.Complex())) > 1e-9 {
			return false
		}
		if cmplx.Abs(z.MulOmega().Complex()-z.Complex()*cmplx.Exp(complex(0, 0.7853981633974483))) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestZOmegaNorm2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		z := randZOmega(rng, 30)
		n := z.Norm2()
		want := cmplx.Abs(z.Complex())
		got := n.Float()
		if got < 0 || abs(got-want*want) > 1e-6*(1+want*want) {
			t.Fatalf("Norm2(%v) = %v (%v), want |z|² = %v", z, n, got, want*want)
		}
	}
}

func TestSqrt2Divisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		z := randZOmega(rng, 30)
		m := z.MulSqrt2()
		if !m.DivisibleBySqrt2() {
			t.Fatalf("z·√2 should be divisible by √2: %v", m)
		}
		back := m.DivSqrt2()
		if back != z {
			t.Fatalf("(z·√2)/√2 = %v, want %v", back, z)
		}
		if cmplx.Abs(m.Complex()-z.Complex()*complex(Sqrt2, 0)) > 1e-9 {
			t.Fatal("MulSqrt2 embedding mismatch")
		}
	}
}

func TestBulletIsRingAutomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		z, w := randZOmega(rng, 40), randZOmega(rng, 40)
		if z.Mul(w).Bullet() != z.Bullet().Mul(w.Bullet()) {
			t.Fatal("bullet not multiplicative")
		}
		if z.Add(w).Bullet() != z.Bullet().Add(w.Bullet()) {
			t.Fatal("bullet not additive")
		}
		if z.Bullet().Bullet() != z {
			t.Fatal("bullet not involutive")
		}
	}
	// √2• = −√2, i• = i.
	s2 := ZSqrt2{0, 1}.ToZOmega()
	if s2.Bullet() != s2.Neg() {
		t.Error("√2• ≠ −√2")
	}
	i := OmegaUnit(2)
	if i.Bullet() != i {
		t.Error("i• ≠ i")
	}
}

func TestZSqrt2Arithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		x := ZSqrt2{rng.Int63n(200) - 100, rng.Int63n(200) - 100}
		y := ZSqrt2{rng.Int63n(200) - 100, rng.Int63n(200) - 100}
		if abs(x.Mul(y).Float()-x.Float()*y.Float()) > 1e-6 {
			t.Fatal("ZSqrt2 Mul embedding mismatch")
		}
		if x.NormZ() != x.Mul(x.Bullet()).A || x.Mul(x.Bullet()).B != 0 {
			t.Fatal("NormZ ≠ x·x•")
		}
	}
	if Lambda.Mul(LambdaInv) != (ZSqrt2{1, 0}) {
		t.Error("λ·λ⁻¹ ≠ 1")
	}
	if Lambda.Mul(Lambda.Bullet()) != (ZSqrt2{-1, 0}) {
		t.Error("λ·λ• ≠ −1")
	}
}

func TestUMatGatesMatchNumeric(t *testing.T) {
	cases := []struct {
		name string
		u    UMat
		m    qmat.M2
	}{
		{"I", UIdentity(), qmat.I2()},
		{"T", UGateT(), qmat.T()},
		{"Tdg", UGateTdg(), qmat.Tdg()},
		{"S", UGateS(), qmat.S()},
		{"Sdg", UGateSdg(), qmat.Sdg()},
		{"X", UGateX(), qmat.X},
		{"Y", UGateY(), qmat.Y},
		{"Z", UGateZ(), qmat.Z},
		{"H", UGateH(), qmat.H()},
	}
	for _, c := range cases {
		if !qmat.ApproxEqual(c.u.Complex(), c.m, 1e-12) {
			t.Errorf("%s: exact %v ≠ numeric %v", c.name, c.u.Complex(), c.m)
		}
	}
}

func TestUMatMulMatchesNumeric(t *testing.T) {
	gatesU := []UMat{UGateT(), UGateS(), UGateH(), UGateX(), UGateY(), UGateZ()}
	gatesM := []qmat.M2{qmat.T(), qmat.S(), qmat.H(), qmat.X, qmat.Y, qmat.Z}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		u := UIdentity()
		m := qmat.I2()
		for i := 0; i < 12; i++ {
			g := rng.Intn(len(gatesU))
			u = u.Mul(gatesU[g])
			m = qmat.Mul(m, gatesM[g])
		}
		if !qmat.ApproxEqual(u.Complex(), m, 1e-9) {
			t.Fatalf("exact product diverged from numeric at trial %d", trial)
		}
		if u.K > 0 && u.E[0][0].DivisibleBySqrt2() && u.E[0][1].DivisibleBySqrt2() &&
			u.E[1][0].DivisibleBySqrt2() && u.E[1][1].DivisibleBySqrt2() {
			t.Fatal("UMat not reduced after Mul")
		}
	}
}

func TestCanonicalKeyPhaseInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gatesU := []UMat{UGateT(), UGateS(), UGateH(), UGateX()}
	for trial := 0; trial < 200; trial++ {
		u := UIdentity()
		for i := 0; i < 10; i++ {
			u = u.Mul(gatesU[rng.Intn(len(gatesU))])
		}
		key := u.CanonicalKey()
		for j := 0; j < 8; j++ {
			if u.MulPhase(j).CanonicalKey() != key {
				t.Fatalf("canonical key not phase invariant (j=%d)", j)
			}
		}
		// A different matrix should (generically) have a different key.
		v := u.Mul(UGateT())
		if v.CanonicalKey() == key {
			t.Fatal("distinct matrices share canonical key")
		}
	}
}

func TestBSqrt2MatchesSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		x := ZSqrt2{rng.Int63n(1000) - 500, rng.Int63n(1000) - 500}
		y := ZSqrt2{rng.Int63n(1000) - 500, rng.Int63n(1000) - 500}
		bx, by := BSqrt2FromZSqrt2(x), BSqrt2FromZSqrt2(y)
		if got := bx.Mul(by); got.A.Int64() != x.Mul(y).A || got.B.Int64() != x.Mul(y).B {
			t.Fatal("BSqrt2 Mul mismatch with int64 path")
		}
		if bx.NormZ().Int64() != x.NormZ() {
			t.Fatal("BSqrt2 NormZ mismatch")
		}
		if bx.Sign() != signFloat(x.Float()) {
			t.Fatalf("BSqrt2 Sign mismatch for %v: %d vs %d", x, bx.Sign(), signFloat(x.Float()))
		}
	}
}

func TestBSqrt2DivExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		x := NewBSqrt2(rng.Int63n(100)-50, rng.Int63n(100)-50)
		y := NewBSqrt2(rng.Int63n(20)-10, rng.Int63n(20)-10)
		if y.IsZero() {
			continue
		}
		p := x.Mul(y)
		q, ok := p.DivExact(y)
		if !ok || !q.Equal(x) {
			t.Fatalf("DivExact((x·y), y) failed: x=%v y=%v got %v ok=%v", x, y, q, ok)
		}
	}
	// Non-divisible case.
	if _, ok := NewBSqrt2(1, 0).DivExact(NewBSqrt2(0, 1)); ok {
		t.Error("1/√2 should not divide exactly in Z[√2]")
	}
}

func TestPowLambda(t *testing.T) {
	for j := -6; j <= 6; j++ {
		l := PowLambda(j)
		want := 1.0
		lf := 1 + Sqrt2
		for i := 0; i < j; i++ {
			want *= lf
		}
		for i := 0; i < -j; i++ {
			want /= lf
		}
		if abs(l.Float()-want) > 1e-9*want {
			t.Errorf("λ^%d = %v, want %v", j, l.Float(), want)
		}
	}
}

func TestBOmegaMatchesSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 300; i++ {
		z, w := randZOmega(rng, 100), randZOmega(rng, 100)
		bz, bw := BOmegaFromZOmega(z), BOmegaFromZOmega(w)
		prod, ok := bz.Mul(bw).ToZOmega()
		if !ok || prod != z.Mul(w) {
			t.Fatal("BOmega Mul mismatch with int64 path")
		}
		n2 := bz.Norm2()
		if n2.A.Int64() != z.Norm2().A || n2.B.Int64() != z.Norm2().B {
			t.Fatal("BOmega Norm2 mismatch")
		}
		if bz.DivisibleBySqrt2() != z.DivisibleBySqrt2() {
			t.Fatal("divisibility mismatch")
		}
		if z.DivisibleBySqrt2() {
			d, _ := bz.DivSqrt2().ToZOmega()
			if d != z.DivSqrt2() {
				t.Fatal("DivSqrt2 mismatch")
			}
		}
	}
}

func TestEuclideanDivAndGCD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		z := BOmegaFromZOmega(randZOmega(rng, 500))
		w := BOmegaFromZOmega(randZOmega(rng, 50))
		if w.IsZero() {
			continue
		}
		q, r := EuclideanDiv(z, w)
		if !q.Mul(w).Add(r).Equal(z) {
			t.Fatal("z ≠ q·w + r")
		}
		if !r.IsZero() && r.NormZ().Cmp(w.NormZ()) >= 0 {
			t.Fatalf("remainder norm not reduced: N(r)=%v N(w)=%v", r.NormZ(), w.NormZ())
		}
	}
	// gcd(g·a, g·b) must be divisible by g.
	for i := 0; i < 100; i++ {
		g := BOmegaFromZOmega(randZOmega(rng, 5))
		a := BOmegaFromZOmega(randZOmega(rng, 20))
		b := BOmegaFromZOmega(randZOmega(rng, 20))
		if g.IsZero() || a.IsZero() || b.IsZero() {
			continue
		}
		d := GCD(g.Mul(a), g.Mul(b))
		if d.IsZero() {
			continue
		}
		if _, ok := DivExactOmega(d, g); !ok {
			t.Fatalf("gcd(g·a, g·b) = %v not divisible by g = %v", d, g)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func signFloat(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}
