package ring

import (
	"fmt"

	"repro/internal/qmat"
)

// UMat is an exact Clifford+T matrix (1/√2^K)·[[E00, E01], [E10, E11]] with
// entries in Z[ω]. The representation is kept reduced: K is the least
// denominator exponent (sde), i.e. either K = 0 or not all entries are
// divisible by √2.
type UMat struct {
	E [2][2]ZOmega
	K int
}

// UIdentity returns the exact identity matrix.
func UIdentity() UMat {
	return UMat{E: [2][2]ZOmega{{ZOmegaFromInt(1), {}}, {{}, ZOmegaFromInt(1)}}}
}

// Exact gate matrices over D[ω].
func gateDiag(d ZOmega) UMat {
	return UMat{E: [2][2]ZOmega{{ZOmegaFromInt(1), {}}, {{}, d}}}
}

// UGateT returns the exact T gate diag(1, ω).
func UGateT() UMat { return gateDiag(OmegaUnit(1)) }

// UGateTdg returns the exact T† gate diag(1, ω⁷).
func UGateTdg() UMat { return gateDiag(OmegaUnit(7)) }

// UGateS returns the exact S gate diag(1, i).
func UGateS() UMat { return gateDiag(OmegaUnit(2)) }

// UGateSdg returns the exact S† gate diag(1, −i).
func UGateSdg() UMat { return gateDiag(OmegaUnit(6)) }

// UGateZ returns the exact Z gate.
func UGateZ() UMat { return gateDiag(OmegaUnit(4)) }

// UGateX returns the exact X gate.
func UGateX() UMat {
	return UMat{E: [2][2]ZOmega{{{}, ZOmegaFromInt(1)}, {ZOmegaFromInt(1), {}}}}
}

// UGateY returns the exact Y gate [[0, −i], [i, 0]].
func UGateY() UMat {
	return UMat{E: [2][2]ZOmega{{{}, OmegaUnit(6)}, {OmegaUnit(2), {}}}}
}

// UGateH returns the exact Hadamard gate (1/√2)[[1, 1], [1, −1]].
func UGateH() UMat {
	one := ZOmegaFromInt(1)
	return UMat{E: [2][2]ZOmega{{one, one}, {one, one.Neg()}}, K: 1}
}

// reduce divides out common √2 factors so K is minimal.
func (m *UMat) reduce() {
	for m.K > 0 &&
		m.E[0][0].DivisibleBySqrt2() && m.E[0][1].DivisibleBySqrt2() &&
		m.E[1][0].DivisibleBySqrt2() && m.E[1][1].DivisibleBySqrt2() {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				m.E[i][j] = m.E[i][j].DivSqrt2()
			}
		}
		m.K--
	}
}

// Mul returns m·n, reduced.
func (m UMat) Mul(n UMat) UMat {
	var r UMat
	r.K = m.K + n.K
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r.E[i][j] = m.E[i][0].Mul(n.E[0][j]).Add(m.E[i][1].Mul(n.E[1][j]))
		}
	}
	r.reduce()
	return r
}

// MulPhase returns ω^j · m.
func (m UMat) MulPhase(j int) UMat {
	u := OmegaUnit(j)
	var r UMat
	r.K = m.K
	for i := 0; i < 2; i++ {
		for jj := 0; jj < 2; jj++ {
			r.E[i][jj] = m.E[i][jj].Mul(u)
		}
	}
	return r
}

// Dagger returns the conjugate transpose m†.
func (m UMat) Dagger() UMat {
	var r UMat
	r.K = m.K
	r.E[0][0] = m.E[0][0].Conj()
	r.E[0][1] = m.E[1][0].Conj()
	r.E[1][0] = m.E[0][1].Conj()
	r.E[1][1] = m.E[1][1].Conj()
	return r
}

// Complex returns the numeric embedding of m.
func (m UMat) Complex() qmat.M2 {
	s := complex(math2PowHalf(-m.K), 0)
	var r qmat.M2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = s * m.E[i][j].Complex()
		}
	}
	return r
}

// math2PowHalf returns √2^e for possibly negative e.
func math2PowHalf(e int) float64 {
	v := 1.0
	if e >= 0 {
		for i := 0; i < e; i++ {
			v *= Sqrt2
		}
	} else {
		for i := 0; i < -e; i++ {
			v /= Sqrt2
		}
	}
	return v
}

// Key is a comparable canonical fingerprint of a UMat up to the 8 global
// phases ω^j. Two exact matrices have equal keys iff they are equal up to a
// power of ω.
type Key struct {
	K int8
	C [16]int32
}

// coeffs serializes the matrix entries into a fixed-order coefficient array.
func (m UMat) coeffs() [16]int32 {
	var c [16]int32
	idx := 0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			z := m.E[i][j]
			c[idx] = int32(z.A)
			c[idx+1] = int32(z.B)
			c[idx+2] = int32(z.C)
			c[idx+3] = int32(z.D)
			idx += 4
		}
	}
	return c
}

func lessCoeffs(a, b [16]int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// CanonicalKey returns the canonical fingerprint: the lexicographically
// smallest coefficient serialization over the 8 phase rotations ω^j·m.
// The matrix must already be reduced (it always is when built via Mul).
func (m UMat) CanonicalKey() Key {
	best := m.coeffs()
	cur := m
	for j := 1; j < 8; j++ {
		cur = cur.mulOmegaInPlace()
		if c := cur.coeffs(); lessCoeffs(c, best) {
			best = c
		}
	}
	return Key{K: int8(m.K), C: best}
}

func (m UMat) mulOmegaInPlace() UMat {
	var r UMat
	r.K = m.K
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r.E[i][j] = m.E[i][j].MulOmega()
		}
	}
	return r
}

// Equal reports exact equality (including phase).
func (m UMat) Equal(n UMat) bool { return m == n }

// EqualUpToPhase reports whether m = ω^j·n for some j.
func (m UMat) EqualUpToPhase(n UMat) bool {
	if m.K != n.K {
		return false
	}
	cur := n
	for j := 0; j < 8; j++ {
		if m == cur {
			return true
		}
		cur = cur.mulOmegaInPlace()
	}
	return false
}

// String renders m for debugging.
func (m UMat) String() string {
	return fmt.Sprintf("(1/√2^%d)[[%v,%v],[%v,%v]]", m.K, m.E[0][0], m.E[0][1], m.E[1][0], m.E[1][1])
}
