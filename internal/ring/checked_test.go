package ring

import (
	"math"
	"math/big"
	"testing"
)

// Differential tests for the overflow-checked int64 fast path: every
// checked operation must agree with the pure-big.Int reference whenever it
// reports ok, and must report ok whenever the reference result (and, for
// products, its term-by-term intermediates) fits comfortably in int64.

// boundary are int64 values at and around the overflow boundary, the cases
// the fast-path promotion logic exists for.
var boundary = []int64{
	0, 1, -1, 2, -2, 3, -3,
	math.MaxInt64, math.MinInt64,
	math.MaxInt64 - 1, math.MinInt64 + 1,
	math.MaxInt32, math.MinInt32,
	1 << 31, -(1 << 31), 1 << 32, -(1 << 32),
	3037000499, -3037000499, // ≈ √MaxInt64: products straddle the boundary
	3037000500, -3037000500,
	1 << 58, -(1 << 58), 1<<58 - 1,
	1 << 62, -(1 << 62),
}

// refFitsZOmega converts a big result back to int64 coefficients.
func refFitsZOmega(z BOmega) (ZOmega, bool) { return z.ToZOmega() }

func refFitsZSqrt2(x BSqrt2) (ZSqrt2, bool) {
	if !x.A.IsInt64() || !x.B.IsInt64() {
		return ZSqrt2{}, false
	}
	return ZSqrt2{x.A.Int64(), x.B.Int64()}, true
}

// checkZOmega asserts the fast-path contract for one ZOmega-valued op:
// ok implies bit-equality with the reference, and ok=false implies the
// exact result (or an intermediate) genuinely leaves int64 range.
func checkZOmega(t *testing.T, name string, got ZOmega, ok bool, ref BOmega, small bool) {
	t.Helper()
	want, fits := refFitsZOmega(ref)
	if ok {
		if !fits {
			t.Fatalf("%s: fast path claimed ok but reference %v does not fit int64", name, ref)
		}
		if got != want {
			t.Fatalf("%s: fast path %v != reference %v", name, got, want)
		}
	} else if small {
		t.Fatalf("%s: fast path refused small operands (reference %v)", name, ref)
	}
}

func checkZSqrt2(t *testing.T, name string, got ZSqrt2, ok bool, ref BSqrt2, small bool) {
	t.Helper()
	want, fits := refFitsZSqrt2(ref)
	if ok {
		if !fits {
			t.Fatalf("%s: fast path claimed ok but reference %v does not fit int64", name, ref)
		}
		if got != want {
			t.Fatalf("%s: fast path %v != reference %v", name, got, want)
		}
	} else if small {
		t.Fatalf("%s: fast path refused small operands (reference %v)", name, ref)
	}
}

// smallOmega reports whether all coefficients are far enough from the
// boundary that no checked op in this file may legitimately overflow
// (|coeff| < 2^30 keeps every dot4 intermediate below 2^63).
func smallOmega(zs ...ZOmega) bool {
	for _, z := range zs {
		for _, c := range [4]int64{z.A, z.B, z.C, z.D} {
			if c >= 1<<30 || c <= -(1<<30) {
				return false
			}
		}
	}
	return true
}

func smallSqrt2(xs ...ZSqrt2) bool {
	for _, x := range xs {
		if x.A >= 1<<30 || x.A <= -(1<<30) || x.B >= 1<<30 || x.B <= -(1<<30) {
			return false
		}
	}
	return true
}

func diffOmegaPair(t *testing.T, z, w ZOmega) {
	t.Helper()
	bz, bw := BOmegaFromZOmega(z), BOmegaFromZOmega(w)
	small := smallOmega(z, w)

	got, ok := z.AddChecked(w)
	checkZOmega(t, "AddChecked", got, ok, bz.Add(bw), small)

	got, ok = z.SubChecked(w)
	checkZOmega(t, "SubChecked", got, ok, bz.Sub(bw), small)

	got, ok = z.MulChecked(w)
	checkZOmega(t, "MulChecked", got, ok, bz.Mul(bw), small)

	got, ok = z.NegChecked()
	checkZOmega(t, "NegChecked", got, ok, bz.Neg(), small)

	got, ok = z.BulletChecked()
	checkZOmega(t, "BulletChecked", got, ok, bz.Bullet(), small)

	got, ok = z.ConjChecked()
	checkZOmega(t, "ConjChecked", got, ok, bz.Conj(), small)

	gotS, okS := z.Norm2Checked()
	checkZSqrt2(t, "Norm2Checked", gotS, okS, bz.Norm2(), small)

	got, ok = z.MulSqrt2Checked()
	checkZOmega(t, "MulSqrt2Checked", got, ok, bz.MulSqrt2(), small)

	if z.DivisibleBySqrt2() {
		got, ok = z.DivSqrt2Checked()
		checkZOmega(t, "DivSqrt2Checked", got, ok, bz.DivSqrt2(), small)
	}
}

func diffSqrt2Pair(t *testing.T, x, y ZSqrt2) {
	t.Helper()
	bx, by := BSqrt2{big.NewInt(x.A), big.NewInt(x.B)}, BSqrt2{big.NewInt(y.A), big.NewInt(y.B)}
	small := smallSqrt2(x, y)

	got, ok := x.AddChecked(y)
	checkZSqrt2(t, "ZSqrt2.AddChecked", got, ok, bx.Add(by), small)

	got, ok = x.SubChecked(y)
	checkZSqrt2(t, "ZSqrt2.SubChecked", got, ok, bx.Sub(by), small)

	got, ok = x.MulChecked(y)
	checkZSqrt2(t, "ZSqrt2.MulChecked", got, ok, bx.Mul(by), small)

	got, ok = x.BulletChecked()
	checkZSqrt2(t, "ZSqrt2.BulletChecked", got, ok, bx.Bullet(), small)

	if n, ok := x.NormZChecked(); ok {
		if ref := bx.NormZ(); !ref.IsInt64() || ref.Int64() != n {
			t.Fatalf("NormZChecked(%v) = %d, reference %v", x, n, ref)
		}
	} else if small {
		t.Fatalf("NormZChecked refused small operand %v", x)
	}
}

// TestCheckedBoundary sweeps the deterministic boundary grid: every pair of
// boundary coefficients in a couple of placements, which covers all
// single-coefficient overflow modes (add, sub, neg, and product terms).
func TestCheckedBoundary(t *testing.T) {
	for _, a := range boundary {
		for _, b := range boundary {
			diffOmegaPair(t, ZOmega{A: a, B: b}, ZOmega{A: b, D: a})
			diffOmegaPair(t, ZOmega{A: a, B: a, C: a, D: a}, ZOmega{A: b, B: b, C: b, D: b})
			diffSqrt2Pair(t, ZSqrt2{A: a, B: b}, ZSqrt2{A: b, B: a})
		}
	}
}

// TestCheckedScalarOverflow pins the three scalar helpers at exact
// boundary inputs (the fuzzers below then explore around them).
func TestCheckedScalarOverflow(t *testing.T) {
	if _, ok := addInt64(math.MaxInt64, 1); ok {
		t.Error("addInt64(MaxInt64, 1) must overflow")
	}
	if r, ok := addInt64(math.MaxInt64, -1); !ok || r != math.MaxInt64-1 {
		t.Errorf("addInt64(MaxInt64, -1) = %d, %v", r, ok)
	}
	if _, ok := subInt64(0, math.MinInt64); ok {
		t.Error("subInt64(0, MinInt64) must overflow")
	}
	if r, ok := subInt64(-1, math.MinInt64); !ok || r != math.MaxInt64 {
		t.Errorf("subInt64(-1, MinInt64) = %d, %v", r, ok)
	}
	if _, ok := mulInt64(3037000500, 3037000500); ok {
		t.Error("mulInt64(√MaxInt64+ε)² must overflow")
	}
	if r, ok := mulInt64(3037000499, 3037000499); !ok || r != 3037000499*3037000499 {
		t.Errorf("mulInt64(√MaxInt64)² = %d, %v", r, ok)
	}
	if _, ok := mulInt64(math.MinInt64, -1); ok {
		t.Error("mulInt64(MinInt64, -1) must overflow")
	}
	if _, ok := negInt64(math.MinInt64); ok {
		t.Error("negInt64(MinInt64) must overflow")
	}
}

// FuzzCheckedZOmega drives the differential property over random (and
// boundary-seeded) coefficient pairs.
func FuzzCheckedZOmega(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4), int64(-1), int64(0), int64(7), int64(-3))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), int64(1<<58), int64(-(1 << 58)),
		int64(3037000499), int64(-3037000500), int64(math.MaxInt64-1), int64(2))
	f.Add(int64(1<<62), int64(1<<62), int64(1<<62), int64(1<<62),
		int64(2), int64(2), int64(2), int64(2))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i int64) {
		diffOmegaPair(t, ZOmega{a, b, c, d}, ZOmega{e, g, h, i})
	})
}

// FuzzCheckedZSqrt2 is the same property over Z[√2].
func FuzzCheckedZSqrt2(f *testing.F) {
	f.Add(int64(1), int64(2), int64(-3), int64(4))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64+1), int64(1<<58), int64(-(1 << 31)))
	f.Add(int64(3037000500), int64(3037000500), int64(-3037000499), int64(1))
	f.Fuzz(func(t *testing.T, a, b, c, d int64) {
		diffSqrt2Pair(t, ZSqrt2{a, b}, ZSqrt2{c, d})
	})
}

// FuzzCheckedUMatMul checks the matrix-level fast path: MulChecked against
// the big-matrix reference, via small random unitary-shaped entries.
func FuzzCheckedUMatMul(f *testing.F) {
	f.Add(int64(1), int64(0), int64(0), int64(1), int64(1), int64(1), int64(-1), int64(1))
	f.Add(int64(1<<58), int64(1), int64(-1), int64(1<<58),
		int64(1), int64(0), int64(0), int64(1))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i int64) {
		m := UMat{E: [2][2]ZOmega{{{A: a}, {A: b}}, {{A: c}, {A: d}}}, K: 1}
		n := UMat{E: [2][2]ZOmega{{{A: e, B: g}, {}}, {{}, {A: h, D: i}}}, K: 2}
		got, ok := m.MulChecked(n)
		if !ok {
			return // legitimate promotion; correctness covered when ok
		}
		// Reference: lift to big, multiply, compare (the lift cannot
		// overflow and the big product is exact).
		bigMul := func(x, y UMat) (UMat, bool) {
			var r UMat
			r.K = x.K + y.K
			for ii := 0; ii < 2; ii++ {
				for jj := 0; jj < 2; jj++ {
					p := BOmegaFromZOmega(x.E[ii][0]).Mul(BOmegaFromZOmega(y.E[0][jj])).
						Add(BOmegaFromZOmega(x.E[ii][1]).Mul(BOmegaFromZOmega(y.E[1][jj])))
					z, fits := p.ToZOmega()
					if !fits {
						return UMat{}, false
					}
					r.E[ii][jj] = z
				}
			}
			r.reduce()
			return r, true
		}
		want, fits := bigMul(m, n)
		if !fits {
			t.Fatalf("MulChecked ok but reference overflows: %v · %v", m, n)
		}
		if got != want {
			t.Fatalf("MulChecked = %v, reference %v", got, want)
		}
	})
}
