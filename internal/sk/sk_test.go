package sk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/qmat"
)

func TestAxisAngleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		axis := [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		n := math.Sqrt(axis[0]*axis[0] + axis[1]*axis[1] + axis[2]*axis[2])
		if n < 1e-9 {
			continue
		}
		for k := range axis {
			axis[k] /= n
		}
		theta := rng.Float64() * 3
		u := rotation(axis, theta)
		if !qmat.IsUnitary(u, 1e-12) {
			t.Fatal("rotation not unitary")
		}
		ax, th := axisAngle(u)
		if math.Abs(th-theta) > 1e-9 {
			t.Fatalf("angle %v != %v", th, theta)
		}
		dot := ax[0]*axis[0] + ax[1]*axis[1] + ax[2]*axis[2]
		if dot < 1-1e-9 {
			t.Fatalf("axis mismatch: dot=%v", dot)
		}
	}
}

// TestBalancedCommutator: the commutator of the returned V, W must
// approximate delta for small angles.
func TestBalancedCommutator(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		axis := [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		n := math.Sqrt(axis[0]*axis[0] + axis[1]*axis[1] + axis[2]*axis[2])
		for k := range axis {
			axis[k] /= n
		}
		theta := 0.05 + rng.Float64()*0.1
		delta := rotation(axis, theta)
		v, w := balancedCommutator(delta)
		comm := qmat.MulAll(v, w, qmat.Dagger(v), qmat.Dagger(w))
		if d := qmat.Distance(delta, comm); d > 0.02 {
			t.Fatalf("commutator distance %v for theta=%v", d, theta)
		}
	}
}

// TestSKConverges: error must decrease with recursion depth (the defining
// property), and depth-0 must match the base net quality.
func TestSKConverges(t *testing.T) {
	eng := NewEngine(gates.Shared(4))
	rng := rand.New(rand.NewSource(3))
	improvedCount := 0
	const trials = 6
	for i := 0; i < trials; i++ {
		u := qmat.HaarRandom(rng)
		_, e0 := eng.Synthesize(u, 0)
		_, e2 := eng.Synthesize(u, 2)
		if e2 < e0 {
			improvedCount++
		}
	}
	if improvedCount < trials-1 {
		t.Fatalf("SK depth 2 improved on depth 0 only %d/%d times", improvedCount, trials)
	}
}

// TestSKSequenceRealizesError.
func TestSKSequenceRealizesError(t *testing.T) {
	eng := NewEngine(gates.Shared(4))
	u := qmat.HaarRandom(rand.New(rand.NewSource(4)))
	seq, err := eng.Synthesize(u, 1)
	if d := qmat.Distance(u, seq.Matrix()); math.Abs(d-err) > 1e-9 {
		t.Fatalf("reported %v realized %v", err, d)
	}
}

// TestSKLengthBlowup: sequence length must grow much faster than
// gridsynth's for comparable error — the motivating weakness (§2.3).
func TestSKLengthBlowup(t *testing.T) {
	eng := NewEngine(gates.Shared(3))
	u := qmat.HaarRandom(rand.New(rand.NewSource(5)))
	s0, _ := eng.Synthesize(u, 0)
	s2, _ := eng.Synthesize(u, 2)
	if len(s2) < 5*len(s0) {
		t.Fatalf("expected ~25x length growth at depth 2: %d vs %d", len(s2), len(s0))
	}
}
