// Package sk implements the Solovay–Kitaev algorithm (Dawson–Nielsen
// formulation) as a historical baseline (§2.3): recursive approximation of
// SU(2) targets by Clifford+T words via balanced group commutators.
// Sequence lengths grow as O(log^c(1/ε)) with c ≈ 3.97 — far from the
// information-theoretic bound that gridsynth and trasyn approach, which is
// exactly the paper's motivation for abandoning it.
package sk

import (
	"math"
	"math/cmplx"

	"repro/internal/gates"
	"repro/internal/qmat"
)

// Engine holds the base ε₀-net (from the step-0 enumeration) and caches.
type Engine struct {
	table *gates.Table
	base  []*gates.Entry
}

// NewEngine builds an engine over the given enumeration table; larger
// tables give a finer base net and faster convergence.
func NewEngine(table *gates.Table) *Engine {
	return &Engine{table: table, base: table.Collect(0, table.MaxT)}
}

// baseApprox returns the best table entry for u (exhaustive scan).
func (e *Engine) baseApprox(u qmat.M2) gates.Sequence {
	var best *gates.Entry
	bestD := math.Inf(1)
	for _, entry := range e.base {
		if d := qmat.Distance(u, entry.M); d < bestD {
			best, bestD = entry, d
		}
	}
	return best.Sequence()
}

// Synthesize runs `depth` levels of Solovay–Kitaev recursion.
func (e *Engine) Synthesize(u qmat.M2, depth int) (gates.Sequence, float64) {
	seq := e.recurse(toSU2(u), depth)
	return seq, qmat.Distance(u, seq.Matrix())
}

func (e *Engine) recurse(u qmat.M2, depth int) gates.Sequence {
	if depth == 0 {
		return e.baseApprox(u)
	}
	prev := e.recurse(u, depth-1)
	uPrev := toSU2(prev.Matrix())
	// Δ = U·U_{n-1}†, a small rotation to be expressed as a balanced group
	// commutator Δ = V·W·V†·W†.
	delta := toSU2(qmat.Mul(u, qmat.Dagger(uPrev)))
	v, w := balancedCommutator(delta)
	vSeq := e.recurse(v, depth-1)
	wSeq := e.recurse(w, depth-1)
	out := make(gates.Sequence, 0, 2*len(vSeq)+2*len(wSeq)+len(prev))
	out = append(out, vSeq...)
	out = append(out, wSeq...)
	out = append(out, vSeq.Adjoint()...)
	out = append(out, wSeq.Adjoint()...)
	out = append(out, prev...)
	return out
}

// toSU2 normalizes a unitary to determinant +1.
func toSU2(u qmat.M2) qmat.M2 {
	det := qmat.Det(u)
	ph := cmplx.Sqrt(det)
	if cmplx.Abs(ph) < 1e-300 {
		return u
	}
	return qmat.Scale(1/ph, u)
}

// axisAngle extracts the rotation axis (unit 3-vector) and angle of an
// SU(2) element U = cos(θ/2)·I − i·sin(θ/2)·(n̂·σ).
func axisAngle(u qmat.M2) (axis [3]float64, theta float64) {
	c := real(qmat.Trace(u)) / 2
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	theta = 2 * math.Acos(c)
	s := math.Sin(theta / 2)
	if math.Abs(s) < 1e-14 {
		return [3]float64{0, 0, 1}, theta
	}
	// u = c·I − i·s·(n_x X + n_y Y + n_z Z).
	nx := -imag(u[0][1]+u[1][0]) / (2 * s)
	ny := real(u[1][0]-u[0][1]) / (2 * s)
	nz := -imag(u[0][0]-u[1][1]) / (2 * s)
	n := math.Sqrt(nx*nx + ny*ny + nz*nz)
	if n < 1e-14 {
		return [3]float64{0, 0, 1}, theta
	}
	return [3]float64{nx / n, ny / n, nz / n}, theta
}

// rotation builds the SU(2) rotation about the given axis by angle theta.
func rotation(axis [3]float64, theta float64) qmat.M2 {
	c := complex(math.Cos(theta/2), 0)
	s := math.Sin(theta / 2)
	// cos·I − i·sin·(n̂·σ)
	return qmat.M2{
		{c - 1i*complex(s*axis[2], 0), complex(-s*axis[1], 0) - 1i*complex(s*axis[0], 0)},
		{complex(s*axis[1], 0) - 1i*complex(s*axis[0], 0), c + 1i*complex(s*axis[2], 0)},
	}
}

// balancedCommutator factors a small rotation Δ (angle θ) into V·W·V†·W†
// with V, W rotations by φ where sin(θ/2) = sin²(φ/2)·… (Dawson–Nielsen):
// choose V, W as x- and y-rotations by φ, compute the commutator's actual
// axis, and conjugate so the commutator matches Δ's axis exactly.
func balancedCommutator(delta qmat.M2) (v, w qmat.M2) {
	_, theta := axisAngle(delta)
	// Solve for φ with commutator angle exactly θ by bisection (the
	// leading-order relation sin(θ/2) = 2·sin²(φ/2) seeds the bracket).
	commAngle := func(phi float64) float64 {
		vx := rotation([3]float64{1, 0, 0}, phi)
		wy := rotation([3]float64{0, 1, 0}, phi)
		_, a := axisAngle(qmat.MulAll(vx, wy, qmat.Dagger(vx), qmat.Dagger(wy)))
		return a
	}
	lo, hi := 0.0, math.Pi
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if commAngle(mid) < theta {
			lo = mid
		} else {
			hi = mid
		}
	}
	phi := (lo + hi) / 2
	vx := rotation([3]float64{1, 0, 0}, phi)
	wy := rotation([3]float64{0, 1, 0}, phi)
	comm := qmat.MulAll(vx, wy, qmat.Dagger(vx), qmat.Dagger(wy))
	// Similarity transform S maps comm's axis onto delta's axis:
	// Δ = S·comm·S† with S = R(axis_comm → axis_delta).
	s := axisAligner(comm, delta)
	return qmat.MulAll(s, vx, qmat.Dagger(s)), qmat.MulAll(s, wy, qmat.Dagger(s))
}

// axisAligner returns an SU(2) element rotating a's axis onto b's axis.
func axisAligner(a, b qmat.M2) qmat.M2 {
	axA, _ := axisAngle(a)
	axB, _ := axisAngle(b)
	// Rotation axis = axA × axB, angle = angle between them.
	cross := [3]float64{
		axA[1]*axB[2] - axA[2]*axB[1],
		axA[2]*axB[0] - axA[0]*axB[2],
		axA[0]*axB[1] - axA[1]*axB[0],
	}
	dot := axA[0]*axB[0] + axA[1]*axB[1] + axA[2]*axB[2]
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	norm := math.Sqrt(cross[0]*cross[0] + cross[1]*cross[1] + cross[2]*cross[2])
	if norm < 1e-12 {
		if dot > 0 {
			return qmat.I2()
		}
		// Opposite axes: rotate π about any perpendicular axis.
		perp := [3]float64{1, 0, 0}
		if math.Abs(axA[0]) > 0.9 {
			perp = [3]float64{0, 1, 0}
		}
		return rotation(perp, math.Pi)
	}
	angle := math.Atan2(norm, dot)
	return rotation([3]float64{cross[0] / norm, cross[1] / norm, cross[2] / norm}, angle)
}
