package exact

import (
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/qmat"
	"repro/internal/ring"
)

func randomWord(r *rand.Rand, n int) gates.Sequence {
	alphabet := []gates.Gate{gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.Sdg, gates.T, gates.Tdg}
	s := make(gates.Sequence, n)
	for i := range s {
		s[i] = alphabet[r.Intn(len(alphabet))]
	}
	return s
}

// TestSynthesizeRoundTrip: synthesizing the exact matrix of a random word
// must reproduce the operator exactly (up to phase).
func TestSynthesizeRoundTrip(t *testing.T) {
	tab := gates.Shared(5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		w := randomWord(rng, 3+rng.Intn(40))
		m := SequenceBU(w)
		seq, err := Synthesize(m, tab)
		if err != nil {
			t.Fatalf("Synthesize failed on %v: %v", w, err)
		}
		got := SequenceBU(seq)
		if !got.EqualUpToPhase(m) {
			t.Fatalf("synthesis differs from target:\nword %v\nout  %v", w, seq)
		}
	}
}

// TestSynthesizeTCountNearOptimal: the output of exact synthesis should not
// use wildly more T gates than the input word (the sde bound: T ≈ 2K).
func TestSynthesizeTCountBound(t *testing.T) {
	tab := gates.Shared(5)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		w := randomWord(rng, 10+rng.Intn(30))
		m := SequenceBU(w)
		seq, err := Synthesize(m, tab)
		if err != nil {
			t.Fatal(err)
		}
		// The minimal T count for an operator with sde K is ≥ 2K−4-ish; the
		// peeling algorithm achieves ≤ 2K+const. Check against the input.
		if seq.TCount() > w.TCount()+4 {
			t.Fatalf("T count blew up: word T=%d, synth T=%d (K=%d)", w.TCount(), seq.TCount(), m.K)
		}
	}
}

// TestFromColumnsUnitary: the gridsynth form must be exactly unitary
// whenever u·u† + t·t† = 2^k.
func TestFromColumnsUnitary(t *testing.T) {
	// u = 1+ω, t chosen so that norms sum to 2^k: try u·u†+t·t† for simple
	// pairs by brute scan over small elements.
	rng := rand.New(rand.NewSource(3))
	found := 0
	for trial := 0; trial < 4000 && found < 20; trial++ {
		u := ring.NewBOmega(rng.Int63n(5)-2, rng.Int63n(5)-2, rng.Int63n(5)-2, rng.Int63n(5)-2)
		tt := ring.NewBOmega(rng.Int63n(5)-2, rng.Int63n(5)-2, rng.Int63n(5)-2, rng.Int63n(5)-2)
		sum := u.Norm2().Add(tt.Norm2())
		if sum.B.Sign() != 0 || sum.A.Sign() <= 0 {
			continue
		}
		// Is sum.A a power of two?
		a := sum.A.Int64()
		k := 0
		for a > 1 && a%2 == 0 {
			a /= 2
			k++
		}
		if a != 1 {
			continue
		}
		for g := 0; g < 2; g++ {
			m := FromColumns(u, tt, k, g)
			if !isUnitary(m) {
				t.Fatalf("FromColumns not unitary: u=%v t=%v k=%d g=%d", u, tt, k, g)
			}
			found++
			seq, err := Synthesize(m, gates.Shared(5))
			if err != nil {
				t.Fatalf("Synthesize failed on gridsynth form: %v", err)
			}
			if !SequenceBU(seq).EqualUpToPhase(m) {
				t.Fatal("gridsynth form round trip failed")
			}
		}
	}
	if found < 10 {
		t.Fatalf("only %d unitary instances found; test too weak", found)
	}
}

// TestSynthesizeRejectsNonUnitary.
func TestSynthesizeRejectsNonUnitary(t *testing.T) {
	bad := NewBUMat(ring.BOmegaFromInt(1), ring.BOmegaFromInt(1),
		ring.BOmegaFromInt(0), ring.BOmegaFromInt(1), 0)
	if _, err := Synthesize(bad, gates.Shared(4)); err == nil {
		t.Error("expected error for non-unitary input")
	}
}

// TestSynthesizeCliffordsAndPhases: pure Cliffords must come back with
// zero T gates.
func TestSynthesizeCliffords(t *testing.T) {
	tab := gates.Shared(4)
	for _, c := range gates.CliffordGroup() {
		m := SequenceBU(c.Seq)
		seq, err := Synthesize(m, tab)
		if err != nil {
			t.Fatalf("Clifford synthesis failed: %v", err)
		}
		if seq.TCount() != 0 {
			t.Fatalf("Clifford %v synthesized with %d T gates", c.Seq, seq.TCount())
		}
		if !SequenceBU(seq).EqualUpToPhase(m) {
			t.Fatal("Clifford round trip failed")
		}
	}
}

// TestNumericAgreement: exact product and float product agree.
func TestNumericAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		w := randomWord(rng, 20)
		m := SequenceBU(w)
		seq, err := Synthesize(m, gates.Shared(5))
		if err != nil {
			t.Fatal(err)
		}
		if d := qmat.Distance(w.Matrix(), seq.Matrix()); d > 1e-7 {
			t.Fatalf("numeric distance %v after exact synthesis", d)
		}
	}
}

func BenchmarkSynthesize(b *testing.B) {
	tab := gates.Shared(5)
	rng := rand.New(rand.NewSource(5))
	words := make([]BUMat, 16)
	for i := range words {
		words[i] = SequenceBU(randomWord(rng, 40))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(words[i%len(words)], tab); err != nil {
			b.Fatal(err)
		}
	}
}
