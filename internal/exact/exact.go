// Package exact implements exact synthesis of unitaries over D[ω] =
// Z[ω, 1/√2] into Clifford+T gate sequences (Kliuchnikov–Maslov–Mosca /
// Giles–Selinger style): peel T^j·H factors from the left to reduce the
// least denominator exponent, then finish with the step-0 enumeration
// table. The output sequence reproduces the input matrix exactly up to a
// global phase ω^m.
package exact

import (
	"errors"
	"fmt"

	"repro/internal/gates"
	"repro/internal/ring"
)

// BUMat is an exact 2x2 matrix (1/√2^K)·[entries ∈ Z[ω]] with
// arbitrary-precision coefficients, kept in reduced form.
type BUMat struct {
	E [2][2]ring.BOmega
	K int
}

// NewBUMat builds a reduced matrix from entries and denominator exponent.
func NewBUMat(e00, e01, e10, e11 ring.BOmega, k int) BUMat {
	m := BUMat{E: [2][2]ring.BOmega{{e00, e01}, {e10, e11}}, K: k}
	m.reduce()
	return m
}

// FromColumns builds V = (1/√2^k)·[[u, −t†·ω^g], [t, u†·ω^g]], the
// gridsynth unitary with det ω^g; u·u† + t·t† = 2^k makes it unitary.
func FromColumns(u, t ring.BOmega, k, g int) BUMat {
	return NewBUMat(u, t.Conj().Neg().MulPhase(g), t, u.Conj().MulPhase(g), k)
}

func (m *BUMat) reduce() {
	for m.K > 0 &&
		m.E[0][0].DivisibleBySqrt2() && m.E[0][1].DivisibleBySqrt2() &&
		m.E[1][0].DivisibleBySqrt2() && m.E[1][1].DivisibleBySqrt2() {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				m.E[i][j] = m.E[i][j].DivSqrt2()
			}
		}
		m.K--
	}
}

// Mul returns a·b, reduced.
func (a BUMat) Mul(b BUMat) BUMat {
	var r BUMat
	r.K = a.K + b.K
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r.E[i][j] = a.E[i][0].Mul(b.E[0][j]).Add(a.E[i][1].Mul(b.E[1][j]))
		}
	}
	r.reduce()
	return r
}

// ToUMat converts to the int64 representation when coefficients fit.
func (a BUMat) ToUMat() (ring.UMat, bool) {
	var u ring.UMat
	u.K = a.K
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			z, ok := a.E[i][j].ToZOmega()
			if !ok {
				return ring.UMat{}, false
			}
			u.E[i][j] = z
		}
	}
	return u, true
}

// EqualUpToPhase reports a = ω^j·b for some j.
func (a BUMat) EqualUpToPhase(b BUMat) bool {
	if a.K != b.K {
		return false
	}
	for j := 0; j < 8; j++ {
		match := true
		for r := 0; r < 2 && match; r++ {
			for c := 0; c < 2 && match; c++ {
				if !a.E[r][c].Equal(b.E[r][c].MulPhase(j)) {
					match = false
				}
			}
		}
		if match {
			return true
		}
	}
	return false
}

// gateBU returns the exact big matrix of a discrete gate.
func gateBU(g gates.Gate) BUMat {
	u := g.UMat()
	var b BUMat
	b.K = u.K
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			b.E[i][j] = ring.BOmegaFromZOmega(u.E[i][j])
		}
	}
	return b
}

// SequenceBU returns the exact big product of a gate sequence.
func SequenceBU(seq gates.Sequence) BUMat {
	m := gateBU(gates.I)
	for _, g := range seq {
		m = m.Mul(gateBU(g))
	}
	return m
}

// reducers[j] = H·T^{−j}, the left-multipliers used to peel a T^j·H prefix.
var reducers = func() [4]BUMat {
	var r [4]BUMat
	tdg := gateBU(gates.Tdg)
	m := gateBU(gates.H)
	for j := 0; j < 4; j++ {
		r[j] = m
		m = m.Mul(tdg) // H·T^{−j} → H·T^{−(j+1)}
	}
	return r
}()

// reducersU mirrors reducers with int64 coefficients for the fast path.
// Every reducer coefficient is in {−1, 0, 1} (checked at init), which the
// overflow-safety argument in mulReducer relies on.
var reducersU = func() [4]ring.UMat {
	var r [4]ring.UMat
	for j := range reducers {
		u, ok := reducers[j].ToUMat()
		if !ok {
			panic("exact: reducer does not fit int64")
		}
		for i := 0; i < 2; i++ {
			for jj := 0; jj < 2; jj++ {
				e := u.E[i][jj]
				for _, c := range [4]int64{e.A, e.B, e.C, e.D} {
					if c < -1 || c > 1 {
						panic("exact: reducer coefficient outside {-1,0,1}")
					}
				}
			}
		}
		r[j] = u
	}
	return r
}()

// uncheckedSafeLimit bounds |coefficient| of w such that a reducer·w
// product cannot overflow int64 even through the reduce step: reducer
// coefficients are in {−1,0,1}, so each product entry coefficient is a sum
// of ≤ 8 terms each ≤ 2^58, i.e. ≤ 2^61, and the DivSqrt2 intermediates of
// reduce stay ≤ 2^62 < MaxInt64.
const uncheckedSafeLimit = 1 << 58

// maxAbsCoeff returns the largest coefficient magnitude of u (saturating
// at MaxInt64 for MinInt64 coefficients).
func maxAbsCoeff(u ring.UMat) int64 {
	m := int64(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			e := u.E[i][j]
			for _, c := range [4]int64{e.A, e.B, e.C, e.D} {
				if c == -1<<63 {
					return 1<<63 - 1
				}
				if c < 0 {
					c = -c
				}
				if c > m {
					m = c
				}
			}
		}
	}
	return m
}

// mulReducer returns reducersU[j]·w, using plain int64 arithmetic when w's
// coefficients are provably too small to overflow and the step-checked
// path otherwise. Both compute the identical exact product.
func mulReducer(j int, w ring.UMat) (ring.UMat, bool) {
	if maxAbsCoeff(w) < uncheckedSafeLimit {
		return reducersU[j].Mul(w), true
	}
	return reducersU[j].MulChecked(w)
}

// prefixFor returns the emitted gates for reducer j (the peeled factor
// T^j·H in matrix-product order).
func prefixFor(j int) gates.Sequence {
	switch j {
	case 0:
		return gates.Sequence{gates.H}
	case 1:
		return gates.Sequence{gates.T, gates.H}
	case 2:
		return gates.Sequence{gates.S, gates.H}
	default:
		return gates.Sequence{gates.S, gates.T, gates.H}
	}
}

// ErrNotUnitary is returned when the input is not exactly unitary over D[ω].
var ErrNotUnitary = errors.New("exact: matrix is not unitary over D[ω]")

// ErrStuck is returned if no T^j·H peel reduces the denominator exponent
// (cannot happen for genuine unitaries; kept as a loud failure mode).
var ErrStuck = errors.New("exact: no reduction step applies")

// fastPathEnabled gates the int64 small-coefficient path. It exists so
// the seed-equality property tests can force the big.Int reference path
// and prove both produce bit-identical sequences; production code never
// turns it off.
var fastPathEnabled = true

// SetFastPath toggles the int64 fast path (for tests and benchmarks);
// it returns the previous setting.
func SetFastPath(enabled bool) bool {
	prev := fastPathEnabled
	fastPathEnabled = enabled
	return prev
}

// Synthesize decomposes the exact unitary m into a Clifford+T sequence
// whose product equals m up to a global phase ω^g. tab supplies minimal
// sequences for the residual low-denominator operators (any table with
// MaxT ≥ 4 works; larger tables trim a few gates).
//
// When every coefficient of m fits in int64 (always, for gridsynth at
// practical ε), the whole peel loop runs in overflow-checked machine
// arithmetic and performs no big.Int work at all; a coefficient outgrowing
// int64 promotes the residual to the big.Int loop mid-stream. Both paths
// perform the identical exact arithmetic, so the emitted sequence is the
// same gate for gate.
func Synthesize(m BUMat, tab *gates.Table) (gates.Sequence, error) {
	if fastPathEnabled {
		if u, ok := m.ToUMat(); ok {
			if unitary, fits := isUnitaryChecked(u); fits {
				if !unitary {
					return nil, ErrNotUnitary
				}
				return synthesizeSmall(u, tab)
			}
		}
	}
	if !isUnitary(m) {
		return nil, ErrNotUnitary
	}
	return synthesizeBig(m, tab, nil, 0)
}

// synthesizeSmall is the int64 peel loop. On overflow it promotes the
// current residual to the big.Int loop, preserving the accumulated prefix
// and iteration count, so the result is identical to an all-big run.
func synthesizeSmall(u ring.UMat, tab *gates.Table) (gates.Sequence, error) {
	var seq gates.Sequence
	w := u
	for iter := 0; ; iter++ {
		if iter > 100000 {
			return nil, ErrStuck
		}
		// Handoff: if the residual fits the enumeration, finish optimally.
		if w.K <= 4 {
			if e, found := tab.Find(w); found {
				return append(seq, e.Sequence()...), nil
			}
		}
		if w.K == 0 {
			// Every K=0 unitary over Z[ω] is a phase-monomial (diag or
			// antidiag with ω^j entries) and lives in any table with
			// MaxT ≥ 1; reaching here means the table was too small.
			return nil, fmt.Errorf("exact: K=0 residual not in table (MaxT=%d)", tab.MaxT)
		}
		reducedAny := false
		for j := 0; j < 4 && !reducedAny; j++ {
			cand, ok := mulReducer(j, w)
			if !ok {
				return synthesizeBig(fromUMat(w), tab, seq, iter)
			}
			if cand.K < w.K {
				seq = append(seq, prefixFor(j)...)
				w = cand
				reducedAny = true
			}
		}
		if !reducedAny {
			// Same K-neutral-then-reducing pair scan as the big loop.
		pairs:
			for j1 := 0; j1 < 4; j1++ {
				mid, ok := mulReducer(j1, w)
				if !ok {
					return synthesizeBig(fromUMat(w), tab, seq, iter)
				}
				if mid.K > w.K {
					continue
				}
				for j2 := 0; j2 < 4; j2++ {
					cand, ok := mulReducer(j2, mid)
					if !ok {
						return synthesizeBig(fromUMat(w), tab, seq, iter)
					}
					if cand.K < w.K {
						seq = append(seq, prefixFor(j1)...)
						seq = append(seq, prefixFor(j2)...)
						w = cand
						reducedAny = true
						break pairs
					}
				}
			}
		}
		if !reducedAny {
			return nil, ErrStuck
		}
	}
}

// synthesizeBig is the arbitrary-precision peel loop (reference path, and
// the continuation target when the fast path overflows).
func synthesizeBig(m BUMat, tab *gates.Table, seq gates.Sequence, startIter int) (gates.Sequence, error) {
	w := m
	for iter := startIter; ; iter++ {
		if iter > 100000 {
			return nil, ErrStuck
		}
		// Handoff: if the residual fits the enumeration, finish optimally.
		if w.K <= 4 {
			if u, ok := w.ToUMat(); ok {
				if e, found := tab.Find(u); found {
					return append(seq, e.Sequence()...), nil
				}
			}
		}
		if w.K == 0 {
			return nil, fmt.Errorf("exact: K=0 residual not in table (MaxT=%d)", tab.MaxT)
		}
		reducedAny := false
		for j := 0; j < 4 && !reducedAny; j++ {
			cand := reducers[j].Mul(w)
			if cand.K < w.K {
				seq = append(seq, prefixFor(j)...)
				w = cand
				reducedAny = true
			}
		}
		if !reducedAny {
			// No single peel reduces K: a K-neutral step followed by a
			// reducing one is required (this is why exact synthesis costs
			// ~2 T gates per unit of denominator exponent).
		pairs:
			for j1 := 0; j1 < 4; j1++ {
				mid := reducers[j1].Mul(w)
				if mid.K > w.K {
					continue
				}
				for j2 := 0; j2 < 4; j2++ {
					cand := reducers[j2].Mul(mid)
					if cand.K < w.K {
						seq = append(seq, prefixFor(j1)...)
						seq = append(seq, prefixFor(j2)...)
						w = cand
						reducedAny = true
						break pairs
					}
				}
			}
		}
		if !reducedAny {
			return nil, ErrStuck
		}
	}
}

// fromUMat lifts an int64 matrix into the big representation.
func fromUMat(u ring.UMat) BUMat {
	var b BUMat
	b.K = u.K
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			b.E[i][j] = ring.BOmegaFromZOmega(u.E[i][j])
		}
	}
	return b
}

// isUnitaryChecked checks u·u† = I in int64 arithmetic; fits=false means
// an intermediate overflowed and the caller must use the big.Int check.
func isUnitaryChecked(u ring.UMat) (unitary, fits bool) {
	d, ok := u.DaggerChecked()
	if !ok {
		return false, false
	}
	p, ok := u.MulChecked(d)
	if !ok {
		return false, false
	}
	if p.K != 0 {
		return false, true
	}
	one := ring.ZOmegaFromInt(1)
	return p.E[0][0] == one && p.E[1][1] == one &&
		p.E[0][1].IsZero() && p.E[1][0].IsZero(), true
}

// isUnitary checks m·m† = I exactly.
func isUnitary(m BUMat) bool {
	d := BUMat{K: m.K}
	d.E[0][0] = m.E[0][0].Conj()
	d.E[0][1] = m.E[1][0].Conj()
	d.E[1][0] = m.E[0][1].Conj()
	d.E[1][1] = m.E[1][1].Conj()
	p := m.Mul(d)
	if p.K != 0 {
		return false
	}
	one := ring.BOmegaFromInt(1)
	return p.E[0][0].Equal(one) && p.E[1][1].Equal(one) &&
		p.E[0][1].IsZero() && p.E[1][0].IsZero()
}
