// Package anneal is the Synthetiq-style baseline: simulated annealing over
// fixed-length Clifford+T gate sequences minimizing the unitary distance of
// Eq. (2), with random restarts under a wall-clock budget. Like the
// original, it is a Monte-Carlo search with no optimality or termination
// guarantee — the paper's evaluation shows it failing to reach tight
// thresholds within its time limit, and this implementation reproduces
// that scaling behavior.
package anneal

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/gates"
	"repro/internal/qmat"
)

// Options configures the annealer.
type Options struct {
	// Length is the sequence length (identity slots allowed). 0 derives a
	// length from the error target.
	Length int
	// InitTemp and CoolRate control the geometric temperature schedule.
	InitTemp float64
	CoolRate float64
	// ItersPerRestart bounds one annealing run; Budget bounds wall clock.
	ItersPerRestart int
	Budget          time.Duration
	// Rng drives the search; nil selects a fixed default seed so runs are
	// reproducible unless the caller opts into randomness.
	Rng *rand.Rand
	// Cancel, when non-nil, aborts the search early (checked at restart
	// boundaries and every few hundred iterations); the best sequence so
	// far is returned.
	Cancel <-chan struct{}
}

// Result reports the best sequence found.
type Result struct {
	Seq      gates.Sequence
	Error    float64
	TCount   int
	Clifford int
	Restarts int
	Success  bool // Error ≤ the requested eps within the budget
}

var alphabet = []gates.Gate{
	gates.I, gates.X, gates.Y, gates.Z, gates.H,
	gates.S, gates.Sdg, gates.T, gates.Tdg,
}

func (o Options) filled(eps float64) Options {
	if o.Length <= 0 {
		// ~3 gates per T and ~3·log2(1/ε) T gates.
		o.Length = 24 + int(9*math.Log2(1/eps))
	}
	if o.InitTemp <= 0 {
		o.InitTemp = 0.3
	}
	if o.CoolRate <= 0 {
		o.CoolRate = 0.9997
	}
	if o.ItersPerRestart <= 0 {
		o.ItersPerRestart = 20000
	}
	if o.Budget <= 0 {
		o.Budget = 2 * time.Second
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// canceled polls o.Cancel without blocking.
func (o Options) canceled() bool {
	if o.Cancel == nil {
		return false
	}
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

// Synthesize searches for a sequence with D(U, seq) ≤ eps.
func Synthesize(u qmat.M2, eps float64, opt Options) Result {
	opt = opt.filled(eps)
	deadline := time.Now().Add(opt.Budget)
	best := Result{Error: math.Inf(1)}
	rng := opt.Rng
	for time.Now().Before(deadline) && !opt.canceled() {
		best.Restarts++
		seq := make(gates.Sequence, opt.Length)
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		cur := qmat.Distance(u, seq.Matrix())
		temp := opt.InitTemp
		for it := 0; it < opt.ItersPerRestart; it++ {
			if it%512 == 0 && (!time.Now().Before(deadline) || opt.canceled()) {
				break
			}
			pos := rng.Intn(opt.Length)
			old := seq[pos]
			seq[pos] = alphabet[rng.Intn(len(alphabet))]
			next := qmat.Distance(u, seq.Matrix())
			accept := next <= cur
			if !accept && temp > 1e-12 {
				accept = rng.Float64() < math.Exp((cur-next)/temp)
			}
			if accept {
				cur = next
			} else {
				seq[pos] = old
			}
			temp *= opt.CoolRate
			if cur < best.Error {
				clean := compact(seq)
				best.Seq = clean
				best.Error = cur
				best.TCount = clean.TCount()
				best.Clifford = clean.CliffordCount()
				if best.Error <= eps {
					best.Success = true
					return best
				}
			}
		}
	}
	best.Success = best.Error <= eps
	return best
}

// compact removes identity slots.
func compact(seq gates.Sequence) gates.Sequence {
	out := make(gates.Sequence, 0, len(seq))
	for _, g := range seq {
		if g != gates.I {
			out = append(out, g)
		}
	}
	return out
}
