package anneal

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/qmat"
)

// TestSynthesizeEasyTarget: a loose threshold must be reachable quickly.
func TestSynthesizeEasyTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := qmat.HaarRandom(rng)
	res := Synthesize(u, 0.2, Options{
		Budget: 3 * time.Second,
		Rng:    rand.New(rand.NewSource(2)),
	})
	if !res.Success {
		t.Fatalf("annealer failed at eps=0.2 (best %v)", res.Error)
	}
	if d := qmat.Distance(u, res.Seq.Matrix()); d > res.Error+1e-9 {
		t.Fatalf("sequence does not realize reported error: %v vs %v", d, res.Error)
	}
}

// TestSynthesizeExactClifford: Clifford targets are trivially reachable.
func TestSynthesizeExactClifford(t *testing.T) {
	res := Synthesize(qmat.H(), 0.01, Options{
		Budget: 2 * time.Second,
		Length: 12,
		Rng:    rand.New(rand.NewSource(3)),
	})
	if !res.Success {
		t.Fatalf("annealer failed on H (best %v)", res.Error)
	}
}

// TestTightThresholdStruggles: the annealer should generally NOT reach
// eps=1e-3 in a very short budget — the scaling wall the paper reports.
// (Statistical: we only require that it fails more often than it succeeds.)
func TestTightThresholdStruggles(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fails := 0
	const trials = 3
	for i := 0; i < trials; i++ {
		u := qmat.HaarRandom(rng)
		res := Synthesize(u, 1e-3, Options{
			Budget: 300 * time.Millisecond,
			Rng:    rand.New(rand.NewSource(int64(10 + i))),
		})
		if !res.Success {
			fails++
		}
	}
	if fails == 0 {
		t.Error("annealer unexpectedly reached 1e-3 in 300ms on every trial")
	}
}

func TestResultMetadata(t *testing.T) {
	u := qmat.HaarRandom(rand.New(rand.NewSource(5)))
	res := Synthesize(u, 0.5, Options{Budget: time.Second, Rng: rand.New(rand.NewSource(6))})
	if res.Seq.TCount() != res.TCount || res.Seq.CliffordCount() != res.Clifford {
		t.Error("metadata mismatch")
	}
	if res.Restarts < 1 {
		t.Error("restarts not counted")
	}
}
