// Package pipeline wires the compilation workflows of Figure 3(a):
// transpile a circuit into an intermediate representation (CX+U3 or
// CX+H+RZ, picking the best of the 16 transpiler settings), then lower
// every nontrivial rotation to Clifford+T — with trasyn for the U3 workflow
// and gridsynth for the Rz workflow. Memoization of repeated rotations
// lives one layer up in the public synth package (synth.Cache), which is
// shared across batch jobs; wrap a Lowerer with (*synth.Cache).Wrap to
// amortize repeats.
package pipeline

import (
	"fmt"

	"repro/circuit"
	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/gridsynth"
	"repro/internal/transpile"
)

// Lowerer synthesizes one rotation op into a discrete sequence
// (matrix-product order) with its synthesis error.
type Lowerer func(op circuit.Op) (gates.Sequence, float64, error)

// Stats aggregates a lowering run.
type Stats struct {
	Rotations  int     // nontrivial rotations synthesized
	ErrorBound float64 // additive bound: Σ per-rotation unitary distances
	MaxError   float64
}

// Lower replaces every nontrivial rotation via f; trivial rotations are
// snapped to discrete gates exactly.
func Lower(c *circuit.Circuit, f Lowerer) (*circuit.Circuit, Stats, error) {
	var st Stats
	out := circuit.New(c.N)
	for _, op := range c.Ops {
		if !op.G.IsRotation() {
			out.Add(op)
			continue
		}
		if TrivialRotation(op) {
			snapTrivial(out, op)
			continue
		}
		seq, err, e := f(op)
		if e != nil {
			return nil, st, fmt.Errorf("pipeline: lowering %v: %w", op.G, e)
		}
		for _, o := range circuit.FromSequence(seq, op.Q[0]) {
			out.Add(o)
		}
		st.Rotations++
		st.ErrorBound += err
		if err > st.MaxError {
			st.MaxError = err
		}
	}
	return out, st, nil
}

// SnapTrivialRotations rewrites every trivial (π/4-multiple) rotation in c
// into exact discrete gates, leaving all other operations — including the
// nontrivial rotations a later Lower pass will synthesize — untouched.
func SnapTrivialRotations(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.N)
	for _, op := range c.Ops {
		if op.G.IsRotation() && TrivialRotation(op) {
			snapTrivial(out, op)
			continue
		}
		out.Add(op)
	}
	return out
}

// TrivialRotation reports whether op is a π/4-multiple rotation that snaps
// to discrete gates exactly, consuming no synthesis.
func TrivialRotation(op circuit.Op) bool {
	tmp := circuit.New(1)
	tmp.Add(circuit.Op{G: op.G, Q: [2]int{0, -1}, P: op.P})
	return tmp.CountRotations() == 0
}

// snapTrivial lowers a trivial rotation exactly via the Rz-basis pass.
func snapTrivial(out *circuit.Circuit, op circuit.Op) {
	tmp := circuit.New(1)
	tmp.Add(circuit.Op{G: op.G, Q: [2]int{0, -1}, P: op.P})
	for _, o := range transpile.ToRzBasis(tmp).Ops {
		o.Q[0] = op.Q[0]
		out.Add(o)
	}
}

// TrasynLowerer synthesizes arbitrary rotations directly with trasyn
// (the U3 workflow). cfg.Epsilon, when set, bounds per-rotation error.
// The lowerer is uncached; wrap it with (*synth.Cache).Wrap to memoize.
func TrasynLowerer(cfg core.Config) Lowerer {
	return func(op circuit.Op) (gates.Sequence, float64, error) {
		res := core.TRASYN(op.Matrix1Q(), cfg)
		if res.Seq == nil {
			return nil, 0, fmt.Errorf("trasyn returned no sequence")
		}
		return res.Seq, res.Error, nil
	}
}

// GridsynthLowerer synthesizes rotations with gridsynth (the Rz workflow):
// RZ gates go through one Rz synthesis; RX/RY/U3 are first decomposed into
// Rz rotations (three for U3, the paper's Eq. (1) baseline), splitting the
// error budget equally. Uncached, like TrasynLowerer.
func GridsynthLowerer(eps float64, opt gridsynth.Options) Lowerer {
	return func(op circuit.Op) (gates.Sequence, float64, error) {
		switch op.G {
		case circuit.RZ:
			r, err := gridsynth.Rz(op.P[0], eps, opt)
			if err != nil {
				return nil, 0, err
			}
			return r.Seq, r.Error, nil
		default:
			r, err := gridsynth.U3(op.Matrix1Q(), eps, opt)
			if err != nil {
				return nil, 0, err
			}
			return r.Seq, r.Error, nil
		}
	}
}

// WorkflowResult is one end-to-end compilation outcome.
type WorkflowResult struct {
	Circuit     *circuit.Circuit
	Stats       Stats
	Setting     transpile.Setting
	IRRotations int // rotations in the IR before synthesis
}

// RunU3Workflow transpiles to the best CX+U3 setting and lowers with trasyn.
func RunU3Workflow(c *circuit.Circuit, cfg core.Config) (WorkflowResult, error) {
	ir, setting := transpile.BestSetting(c, transpile.BasisU3)
	low, st, err := Lower(ir, TrasynLowerer(cfg))
	return WorkflowResult{Circuit: low, Stats: st, Setting: setting, IRRotations: ir.CountRotations()}, err
}

// RunRzWorkflow transpiles to the best CX+H+RZ setting and lowers with
// gridsynth at the given per-rotation threshold.
func RunRzWorkflow(c *circuit.Circuit, eps float64, opt gridsynth.Options) (WorkflowResult, error) {
	ir, setting := transpile.BestSetting(c, transpile.BasisRz)
	low, st, err := Lower(ir, GridsynthLowerer(eps, opt))
	return WorkflowResult{Circuit: low, Stats: st, Setting: setting, IRRotations: ir.CountRotations()}, err
}
