// Package pipeline wires the compilation workflows of Figure 3(a):
// transpile a circuit into an intermediate representation (CX+U3 or
// CX+H+RZ, picking the best of the 16 transpiler settings), then lower
// every nontrivial rotation to Clifford+T — with trasyn for the U3 workflow
// and gridsynth for the Rz workflow. Synthesis results are cached by
// (gate, angles), which mirrors how compilers amortize repeated rotations.
package pipeline

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/gridsynth"
	"repro/internal/transpile"
)

// Lowerer synthesizes one rotation op into a discrete sequence
// (matrix-product order) with its synthesis error.
type Lowerer func(op circuit.Op) (gates.Sequence, float64, error)

// Stats aggregates a lowering run.
type Stats struct {
	Rotations  int     // nontrivial rotations synthesized
	ErrorBound float64 // additive bound: Σ per-rotation unitary distances
	MaxError   float64
}

// Lower replaces every nontrivial rotation via f; trivial rotations are
// snapped to discrete gates exactly.
func Lower(c *circuit.Circuit, f Lowerer) (*circuit.Circuit, Stats, error) {
	var st Stats
	out := circuit.New(c.N)
	for _, op := range c.Ops {
		if !op.G.IsRotation() {
			out.Add(op)
			continue
		}
		if isTrivialRotation(op) {
			snapTrivial(out, op)
			continue
		}
		seq, err, e := f(op)
		if e != nil {
			return nil, st, fmt.Errorf("pipeline: lowering %v: %w", op.G, e)
		}
		for _, o := range circuit.FromSequence(seq, op.Q[0]) {
			out.Add(o)
		}
		st.Rotations++
		st.ErrorBound += err
		if err > st.MaxError {
			st.MaxError = err
		}
	}
	return out, st, nil
}

func isTrivialRotation(op circuit.Op) bool {
	tmp := circuit.New(1)
	tmp.Add(circuit.Op{G: op.G, Q: [2]int{0, -1}, P: op.P})
	return tmp.CountRotations() == 0
}

// snapTrivial lowers a trivial rotation exactly via the Rz-basis pass.
func snapTrivial(out *circuit.Circuit, op circuit.Op) {
	tmp := circuit.New(1)
	tmp.Add(circuit.Op{G: op.G, Q: [2]int{0, -1}, P: op.P})
	for _, o := range transpile.ToRzBasis(tmp).Ops {
		o.Q[0] = op.Q[0]
		out.Add(o)
	}
}

// cacheKey quantizes angles so repeated rotations hit the cache.
type cacheKey struct {
	g       circuit.GateType
	a, b, c int64
}

func keyOf(op circuit.Op) cacheKey {
	q := func(x float64) int64 {
		// Wrap to [0, 4π) (U3 angles are 2π-periodic up to phase; 4π is
		// safe for every convention) and quantize at 1e-12.
		x = math.Mod(x, 4*math.Pi)
		if x < 0 {
			x += 4 * math.Pi
		}
		return int64(math.Round(x * 1e12))
	}
	return cacheKey{g: op.G, a: q(op.P[0]), b: q(op.P[1]), c: q(op.P[2])}
}

type cachedResult struct {
	seq gates.Sequence
	err float64
	e   error
}

// cachingLowerer memoizes an underlying lowerer; safe for concurrent use.
func cachingLowerer(f Lowerer) Lowerer {
	var mu sync.Mutex
	cache := map[cacheKey]cachedResult{}
	return func(op circuit.Op) (gates.Sequence, float64, error) {
		k := keyOf(op)
		mu.Lock()
		if r, ok := cache[k]; ok {
			mu.Unlock()
			return r.seq, r.err, r.e
		}
		mu.Unlock()
		seq, err, e := f(op)
		mu.Lock()
		cache[k] = cachedResult{seq, err, e}
		mu.Unlock()
		return seq, err, e
	}
}

// TrasynLowerer synthesizes arbitrary rotations directly with trasyn
// (the U3 workflow). cfg.Epsilon, when set, bounds per-rotation error.
func TrasynLowerer(cfg core.Config) Lowerer {
	return cachingLowerer(func(op circuit.Op) (gates.Sequence, float64, error) {
		res := core.TRASYN(op.Matrix1Q(), cfg)
		if res.Seq == nil {
			return nil, 0, fmt.Errorf("trasyn returned no sequence")
		}
		return res.Seq, res.Error, nil
	})
}

// GridsynthLowerer synthesizes rotations with gridsynth (the Rz workflow):
// RZ gates go through one Rz synthesis; RX/RY/U3 are first decomposed into
// Rz rotations (three for U3, the paper's Eq. (1) baseline), splitting the
// error budget equally.
func GridsynthLowerer(eps float64, opt gridsynth.Options) Lowerer {
	return cachingLowerer(func(op circuit.Op) (gates.Sequence, float64, error) {
		switch op.G {
		case circuit.RZ:
			r, err := gridsynth.Rz(op.P[0], eps, opt)
			if err != nil {
				return nil, 0, err
			}
			return r.Seq, r.Error, nil
		default:
			r, err := gridsynth.U3(op.Matrix1Q(), eps, opt)
			if err != nil {
				return nil, 0, err
			}
			return r.Seq, r.Error, nil
		}
	})
}

// WorkflowResult is one end-to-end compilation outcome.
type WorkflowResult struct {
	Circuit     *circuit.Circuit
	Stats       Stats
	Setting     transpile.Setting
	IRRotations int // rotations in the IR before synthesis
}

// RunU3Workflow transpiles to the best CX+U3 setting and lowers with trasyn.
func RunU3Workflow(c *circuit.Circuit, cfg core.Config) (WorkflowResult, error) {
	ir, setting := transpile.BestSetting(c, transpile.BasisU3)
	low, st, err := Lower(ir, TrasynLowerer(cfg))
	return WorkflowResult{Circuit: low, Stats: st, Setting: setting, IRRotations: ir.CountRotations()}, err
}

// RunRzWorkflow transpiles to the best CX+H+RZ setting and lowers with
// gridsynth at the given per-rotation threshold.
func RunRzWorkflow(c *circuit.Circuit, eps float64, opt gridsynth.Options) (WorkflowResult, error) {
	ir, setting := transpile.BestSetting(c, transpile.BasisRz)
	low, st, err := Lower(ir, GridsynthLowerer(eps, opt))
	return WorkflowResult{Circuit: low, Stats: st, Setting: setting, IRRotations: ir.CountRotations()}, err
}
