package pipeline

import (
	"math"
	"math/rand"
	"testing"

	"repro/circuit"
	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/gridsynth"
	"repro/internal/sim"
	"repro/internal/suite"
)

func trasynCfg() core.Config {
	cfg := core.DefaultConfig(gates.Shared(6), 6, 2, 1500)
	cfg.Rng = rand.New(rand.NewSource(99))
	cfg.Epsilon = 0.02
	return cfg
}

// TestLowerPreservesSemantics: the lowered circuit must approximate the
// original within the accumulated error bound.
func TestLowerPreservesSemantics(t *testing.T) {
	c := circuit.New(2)
	c.H(0).RZ(0, 0.8).CX(0, 1).RX(1, 1.1).U3Gate(0, 0.5, 0.3, -0.7).CX(0, 1)
	low, st, err := Lower(c, TrasynLowerer(trasynCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rotations != 3 {
		t.Fatalf("expected 3 synthesized rotations, got %d", st.Rotations)
	}
	d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(low))
	if d > st.ErrorBound*1.5+1e-6 {
		t.Fatalf("lowered circuit distance %v exceeds bound %v", d, st.ErrorBound)
	}
	if low.CountRotations() != 0 {
		t.Fatal("rotations left after lowering")
	}
}

// TestLowerSnapsTrivial: π/4-multiples must not consume synthesis.
func TestLowerSnapsTrivial(t *testing.T) {
	c := circuit.New(1)
	c.RZ(0, math.Pi/2).RZ(0, math.Pi/4).RX(0, math.Pi)
	calls := 0
	low, st, err := Lower(c, func(op circuit.Op) (gates.Sequence, float64, error) {
		calls++
		return gates.Sequence{gates.T}, 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 || st.Rotations != 0 {
		t.Fatalf("trivial rotations were synthesized (%d calls)", calls)
	}
	if d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(low)); d > 1e-6 {
		t.Fatalf("trivial snap changed unitary: %v", d)
	}
}

// TestGridsynthLowerer: Rz workflow end to end on a small circuit.
func TestGridsynthLowerer(t *testing.T) {
	c := circuit.New(2)
	c.H(0).RZ(0, 0.8).CX(0, 1).RZ(1, 2.2)
	low, st, err := Lower(c, GridsynthLowerer(0.01, gridsynth.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rotations != 2 {
		t.Fatalf("rotations = %d", st.Rotations)
	}
	d := sim.UnitaryDistance(sim.Unitary(c), sim.Unitary(low))
	if d > 0.03 {
		t.Fatalf("distance %v", d)
	}
}

// TestTrivialRotation: π/4-multiples are trivial, others are not.
func TestTrivialRotation(t *testing.T) {
	trivial := circuit.Op{G: circuit.RZ, Q: [2]int{0, -1}, P: [3]float64{math.Pi / 2}}
	if !TrivialRotation(trivial) {
		t.Fatal("RZ(π/2) should be trivial")
	}
	generic := circuit.Op{G: circuit.RZ, Q: [2]int{0, -1}, P: [3]float64{0.7}}
	if TrivialRotation(generic) {
		t.Fatal("RZ(0.7) should not be trivial")
	}
}

// TestWorkflowsOnQAOA: the headline comparison at miniature scale — the U3
// workflow must use fewer T gates than the Rz workflow at comparable
// circuit error (RQ3's mechanism).
func TestWorkflowsOnQAOA(t *testing.T) {
	qaoa := suite.QAOAMaxCut(4, 1, 5)
	u3res, err := RunU3Workflow(qaoa, trasynCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Match gridsynth's budget to trasyn's per-rotation errors (paper
	// scales thresholds by the rotation ratio).
	epsRz := 0.02
	if u3res.Stats.Rotations > 0 {
		epsRz = u3res.Stats.ErrorBound / float64(u3res.Stats.Rotations)
	}
	rzres, err := RunRzWorkflow(qaoa, epsRz, gridsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tU3, tRz := u3res.Circuit.TCount(), rzres.Circuit.TCount()
	if tU3 == 0 || tRz == 0 {
		t.Fatalf("degenerate T counts: u3=%d rz=%d", tU3, tRz)
	}
	if tU3 > tRz {
		t.Fatalf("U3 workflow used more T gates than Rz workflow: %d vs %d", tU3, tRz)
	}
	// Both lowered circuits must still approximate the original.
	d := sim.UnitaryDistance(sim.Unitary(qaoa), sim.Unitary(u3res.Circuit))
	if d > u3res.Stats.ErrorBound*2+1e-5 {
		t.Fatalf("U3 workflow drifted: %v (bound %v)", d, u3res.Stats.ErrorBound)
	}
}
