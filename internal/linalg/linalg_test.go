package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(r *rand.Rand, rows, cols int) Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func matApproxEqual(a, b Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 5, 7)
	if !matApproxEqual(Identity(5).Mul(m), m, 1e-12) {
		t.Error("I·m ≠ m")
	}
	if !matApproxEqual(m.Mul(Identity(7)), m, 1e-12) {
		t.Error("m·I ≠ m")
	}
}

func TestDaggerInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 4, 6)
	if !matApproxEqual(m.Dagger().Dagger(), m, 0) {
		t.Error("(m†)† ≠ m")
	}
}

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 2 + r.Intn(10)
		cols := 2 + r.Intn(10)
		m := randMatrix(r, rows, cols)
		q, rr := QR(m)
		if !matApproxEqual(q.Mul(rr), m, 1e-9) {
			return false
		}
		// Q†Q = I
		g := q.Dagger().Mul(q)
		return matApproxEqual(g, Identity(g.Rows), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns.
	m := FromRows([][]complex128{
		{1, 1, 2},
		{1i, 1i, 0},
		{0, 0, 1},
	})
	q, r := QR(m)
	if !matApproxEqual(q.Mul(r), m, 1e-9) {
		t.Error("QR failed on rank-deficient input")
	}
	g := q.Dagger().Mul(q)
	if !matApproxEqual(g, Identity(g.Rows), 1e-9) {
		t.Error("Q not orthonormal on rank-deficient input")
	}
}

func TestLQReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(6)
		cols := rows + rng.Intn(20) // wide, the MPS case
		m := randMatrix(rng, rows, cols)
		l, q := LQ(m)
		if !matApproxEqual(l.Mul(q), m, 1e-9) {
			t.Fatal("L·Q ≠ m")
		}
		// Q rows orthonormal: Q·Q† = I.
		g := q.Mul(q.Dagger())
		if !matApproxEqual(g, Identity(g.Rows), 1e-9) {
			t.Fatal("Q rows not orthonormal")
		}
	}
}

func TestSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		rows := 1 + rng.Intn(9)
		cols := 1 + rng.Intn(9)
		m := randMatrix(rng, rows, cols)
		u, s, v := SVD(m)
		// Reconstruct U·diag(s)·V†.
		k := len(s)
		us := u.Clone()
		for j := 0; j < k; j++ {
			for i := 0; i < us.Rows; i++ {
				us.Set(i, j, us.At(i, j)*complex(s[j], 0))
			}
		}
		rec := us.Mul(v.Dagger())
		if !matApproxEqual(rec, m, 1e-8) {
			t.Fatalf("SVD reconstruction failed (%dx%d): err=%v", rows, cols, 0)
		}
		// Singular values decreasing and non-negative.
		for j := 1; j < k; j++ {
			if s[j] > s[j-1]+1e-12 || s[j] < 0 {
				t.Fatal("singular values not sorted/non-negative")
			}
		}
		// U, V orthonormal columns.
		if !matApproxEqual(u.Dagger().Mul(u), Identity(k), 1e-8) {
			t.Fatal("U not orthonormal")
		}
		if !matApproxEqual(v.Dagger().Mul(v), Identity(k), 1e-8) {
			t.Fatal("V not orthonormal")
		}
	}
}

func TestSVDSingularValuesMatchFrobenius(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randMatrix(rng, 6, 4)
	_, s, _ := SVD(m)
	sum := 0.0
	for _, x := range s {
		sum += x * x
	}
	f := m.FrobNorm()
	if math.Abs(sum-f*f) > 1e-9*(1+f*f) {
		t.Errorf("Σσ² = %v, ‖m‖² = %v", sum, f*f)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	m := FromRows([][]complex128{
		{1, 2, 3},
		{2, 4, 6},
		{1i, 2i, 3i},
	})
	u, s, v := SVD(m)
	if s[1] > 1e-9 || s[2] > 1e-9 {
		t.Errorf("rank-1 matrix should have one nonzero singular value: %v", s)
	}
	us := u.Clone()
	for j := range s {
		for i := 0; i < us.Rows; i++ {
			us.Set(i, j, us.At(i, j)*complex(s[j], 0))
		}
	}
	if !matApproxEqual(us.Mul(v.Dagger()), m, 1e-8) {
		t.Error("rank-deficient reconstruction failed")
	}
}
