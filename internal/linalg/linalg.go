// Package linalg provides the dense complex linear algebra the tensor
// network machinery needs: matrix products, Householder QR/LQ, and a
// one-sided Jacobi SVD. Everything is hand-rolled on complex128 with no
// dependencies; sizes in this repository are small (bond dimensions ≤ 4,
// physical dimensions up to ~10^5 on one side only).
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense complex matrix in row-major layout.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices.
func FromRows(rows [][]complex128) Matrix {
	if len(rows) == 0 {
		return Matrix{}
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m·n.
func (m Matrix) Mul(n Matrix) Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	r := New(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			rowN := n.Data[k*n.Cols : (k+1)*n.Cols]
			rowR := r.Data[i*n.Cols : (i+1)*n.Cols]
			for j, b := range rowN {
				rowR[j] += a * b
			}
		}
	}
	return r
}

// Dagger returns the conjugate transpose.
func (m Matrix) Dagger() Matrix {
	d := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			d.Data[j*m.Rows+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return d
}

// FrobNorm returns the Frobenius norm.
func (m Matrix) FrobNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// Identity returns the n×n identity.
func Identity(n int) Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// QR computes a thin QR decomposition m = Q·R with Q (rows×k) having
// orthonormal columns and R (k×cols) upper triangular, k = min(rows, cols).
// Modified Gram-Schmidt with one reorthogonalization pass: amply stable for
// the well-conditioned small matrices used here.
func QR(m Matrix) (q, r Matrix) {
	rows, cols := m.Rows, m.Cols
	k := rows
	if cols < k {
		k = cols
	}
	q = New(rows, k)
	r = New(k, cols)
	// Work on column vectors.
	col := func(mat Matrix, j int) []complex128 {
		v := make([]complex128, mat.Rows)
		for i := 0; i < mat.Rows; i++ {
			v[i] = mat.At(i, j)
		}
		return v
	}
	qcols := make([][]complex128, 0, k)
	for j := 0; j < cols; j++ {
		v := col(m, j)
		coeffs := make([]complex128, len(qcols))
		for pass := 0; pass < 2; pass++ {
			for i, qc := range qcols {
				var dot complex128
				for t := range v {
					dot += cmplx.Conj(qc[t]) * v[t]
				}
				coeffs[i] += dot
				for t := range v {
					v[t] -= dot * qc[t]
				}
			}
		}
		nrm := 0.0
		for _, x := range v {
			nrm += real(x)*real(x) + imag(x)*imag(x)
		}
		nrm = math.Sqrt(nrm)
		if len(qcols) < k {
			qi := len(qcols)
			if nrm > 1e-14 {
				for t := range v {
					v[t] /= complex(nrm, 0)
				}
				r.Set(qi, j, complex(nrm, 0))
			} else {
				// Deficient column: extend with a canonical basis vector
				// orthogonal to the span so Q stays orthonormal.
				v = orthoFill(qcols, rows)
				r.Set(qi, j, 0)
			}
			qcols = append(qcols, v)
			for i := 0; i < qi; i++ {
				r.Set(i, j, coeffs[i])
			}
		} else {
			for i := 0; i < k; i++ {
				r.Set(i, j, coeffs[i])
			}
		}
	}
	for j, qc := range qcols {
		for i := 0; i < rows; i++ {
			q.Set(i, j, qc[i])
		}
	}
	return q, r
}

// orthoFill returns a unit vector orthogonal to all vectors in qcols.
func orthoFill(qcols [][]complex128, n int) []complex128 {
	for b := 0; b < n; b++ {
		v := make([]complex128, n)
		v[b] = 1
		for pass := 0; pass < 2; pass++ {
			for _, qc := range qcols {
				var dot complex128
				for t := range v {
					dot += cmplx.Conj(qc[t]) * v[t]
				}
				for t := range v {
					v[t] -= dot * qc[t]
				}
			}
		}
		nrm := 0.0
		for _, x := range v {
			nrm += real(x)*real(x) + imag(x)*imag(x)
		}
		if nrm > 1e-8 {
			s := complex(1/math.Sqrt(nrm), 0)
			for t := range v {
				v[t] *= s
			}
			return v
		}
	}
	panic("linalg: cannot extend orthonormal basis")
}

// LQ computes m = L·Q with Q (k×cols) having orthonormal rows and L
// (rows×k) lower triangular, k = min(rows, cols). Implemented via QR of m†.
func LQ(m Matrix) (l, q Matrix) {
	qd, rd := QR(m.Dagger())
	return rd.Dagger(), qd.Dagger()
}

// SVD computes a thin singular value decomposition m = U·diag(s)·V† using
// one-sided Jacobi rotations on columns. U is rows×k, s has k = min(rows,
// cols) non-negative entries in decreasing order, V is cols×k.
func SVD(m Matrix) (u Matrix, s []float64, v Matrix) {
	rows, cols := m.Rows, m.Cols
	if rows < cols {
		// SVD of the dagger and swap factors.
		ud, sd, vd := SVD(m.Dagger())
		return vd, sd, ud
	}
	a := m.Clone()       // rows×cols, will become U·diag(s)
	vt := Identity(cols) // accumulates V (cols×cols)
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				// Gram entries for columns p, q.
				var app, aqq float64
				var apq complex128
				for i := 0; i < rows; i++ {
					cp := a.Data[i*cols+p]
					cq := a.Data[i*cols+q]
					app += real(cp)*real(cp) + imag(cp)*imag(cp)
					aqq += real(cq)*real(cq) + imag(cq)*imag(cq)
					apq += cmplx.Conj(cp) * cq
				}
				mag := cmplx.Abs(apq)
				if mag <= 1e-15*math.Sqrt(app*aqq)+1e-300 {
					continue
				}
				off += mag
				// Complex Jacobi rotation diagonalizing [[app, apq],[apq*, aqq]].
				phase := apq / complex(mag, 0)
				tau := (aqq - app) / (2 * mag)
				t := sign(tau) / (math.Abs(tau) + math.Sqrt(1+tau*tau))
				c := 1 / math.Sqrt(1+t*t)
				sn := complex(c*t, 0) * phase
				cc := complex(c, 0)
				for i := 0; i < rows; i++ {
					cp := a.Data[i*cols+p]
					cq := a.Data[i*cols+q]
					a.Data[i*cols+p] = cc*cp - cmplx.Conj(sn)*cq
					a.Data[i*cols+q] = sn*cp + cc*cq
				}
				for i := 0; i < cols; i++ {
					vp := vt.Data[i*cols+p]
					vq := vt.Data[i*cols+q]
					vt.Data[i*cols+p] = cc*vp - cmplx.Conj(sn)*vq
					vt.Data[i*cols+q] = sn*vp + cc*vq
				}
			}
		}
		if off < 1e-14 {
			break
		}
	}
	// Column norms are the singular values.
	type sv struct {
		val float64
		idx int
	}
	svs := make([]sv, cols)
	for j := 0; j < cols; j++ {
		n := 0.0
		for i := 0; i < rows; i++ {
			x := a.Data[i*cols+j]
			n += real(x)*real(x) + imag(x)*imag(x)
		}
		svs[j] = sv{math.Sqrt(n), j}
	}
	// Selection sort by decreasing value (cols is small).
	for i := 0; i < cols; i++ {
		best := i
		for j := i + 1; j < cols; j++ {
			if svs[j].val > svs[best].val {
				best = j
			}
		}
		svs[i], svs[best] = svs[best], svs[i]
	}
	k := cols
	u = New(rows, k)
	v = New(cols, k)
	s = make([]float64, k)
	for o, e := range svs {
		s[o] = e.val
		if e.val > 1e-300 {
			inv := complex(1/e.val, 0)
			for i := 0; i < rows; i++ {
				u.Set(i, o, a.Data[i*cols+e.idx]*inv)
			}
		}
		for i := 0; i < cols; i++ {
			v.Set(i, o, vt.Data[i*cols+e.idx])
		}
	}
	return u, s, v
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
